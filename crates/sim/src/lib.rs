//! A deterministic discrete-event cluster simulator with a queueing cost
//! model.
//!
//! ## Why a simulator
//!
//! The paper's evaluation ran on a 64-machine cluster; its headline result is
//! a *resource contention* effect: the readers check that buys CC-LO its
//! latency-"optimal" ROTs inflates the CPU demand of PUTs, driving up server
//! utilization, queueing delays and ultimately ROT latency — even in
//! read-heavy workloads. Reproducing that requires a substrate in which
//! servers have finite processing capacity and messages queue. This crate
//! provides exactly that:
//!
//! * every **server** is a queueing station with a configurable number of
//!   worker threads; each message has a service time derived from an
//!   explicit, calibrated [`cost::CostModel`] (per-message RX/TX CPU,
//!   per-byte marshalling, per-ROT-id readers-check work, …);
//! * every **link** has a per-hop latency plus per-byte wire time and
//!   delivers FIFO;
//! * **clients** are closed-loop and effectively infinitely parallel (client
//!   machines were not the bottleneck in the paper either).
//!
//! The protocols themselves are *not* simulated — they are the real state
//! machines from `contrarian-core`/`-cclo`/`-cure`, exchanging real messages
//! with real bookkeeping (reader records, dependency vectors, garbage
//! collection). Only CPU time and the network are modeled. The same state
//! machines also run on a live multi-threaded transport
//! (`contrarian-transport`).
//!
//! Runs are fully deterministic given a seed: events are ordered by
//! `(time, sequence)` and all randomness flows from one PRNG.

pub mod actor;
pub mod cost;
pub mod metrics;
pub mod sim;
pub mod testkit;

pub use actor::{Actor, ActorCtx, TimerKind};
pub use cost::{CostModel, SimMessage};
pub use metrics::{Histogram, Metrics};
pub use sim::Sim;
