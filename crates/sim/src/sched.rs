//! Event schedulers: the calendar queue that makes 100+-partition sweeps
//! tractable, the binary-heap baseline it replaced, and the scheduler-mode
//! selector that also picks the sharded parallel engine.
//!
//! All engine modes implement the *same total order* — events leave
//! strictly by `(t, key)`, where `key` is the deterministic
//! source-attributed event key the simulator computes (see
//! [`crate::shard`]) — so a run is bit-identical under any of them. That
//! equivalence is load-bearing: the cross-engine determinism tests diff
//! full histories across schedulers, and the `sim_scale` bench measures
//! the speedup at a fixed, identical workload.
//!
//! ## The calendar queue
//!
//! A single [`std::collections::BinaryHeap`] costs `O(log n)` per
//! operation with `n` the *entire* event population — at 128 partitions and
//! hundreds of closed-loop clients that population is tens of thousands of
//! in-flight messages and timers, and the heap's cache-hostile sifting
//! dominates the engine. The calendar queue exploits what a cluster
//! simulation actually looks like:
//!
//! * most insertions land a few service times ahead of `now` — they go into
//!   an unsorted per-bucket `Vec` (`O(1)` push, [`CalendarQueue::W_NS`]
//!   nanoseconds of virtual time per bucket);
//! * only the *current* bucket needs total order — it is kept as a small
//!   binary heap, loaded (heapified) once when time enters the bucket;
//! * events scheduled for exactly `now` (same-tick self-delivery: worker
//!   hand-offs, zero-cost injections) go to a small dedicated `due` heap
//!   instead of the wheel — it holds only the current tick's stragglers,
//!   so its heap operations touch a few entries where the current bucket's
//!   may touch hundreds;
//! * the rare far-future event (GC and heartbeat timers) overflows into a
//!   small heap that drains into the wheel as the horizon advances.
//!
//! Insertion is thus `O(1)` for everything but the current tick and
//! bucket, and pops sort only events that are about to execute. (The due
//! lane used to be a FIFO `VecDeque`, which was correct when event keys
//! were a single global insertion counter; source-attributed keys are not
//! monotone in push order at a fixed `t`, so the lane is a heap now.)

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which engine mode a [`crate::Sim`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedKind {
    /// Hierarchical calendar queue, single event loop (the default).
    #[default]
    Calendar,
    /// One global binary heap — the original engine, kept as a differential
    /// baseline for determinism tests and the `sim_scale` bench.
    Heap,
    /// Sharded parallel engine: one event loop (and one calendar queue) per
    /// shard group of DCs, synchronized in conservative cross-DC windows.
    /// `shards == 0` means one shard per DC; an explicit count assigns DCs
    /// round-robin (`dc % shards`), and a count above the DC count leaves
    /// the surplus shards empty. Intra-DC traffic never crosses a shard.
    Sharded {
        /// Requested shard count; `0` = one per DC.
        shards: u16,
    },
}

impl SchedKind {
    /// Parses a `CONTRARIAN_SCHED` value. `None` (unset) defaults to
    /// [`SchedKind::Calendar`]; an unrecognized value is an error listing
    /// the valid set — silently falling back would make an engine
    /// comparison measure the calendar queue against itself.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        match value {
            Some("heap") => Ok(SchedKind::Heap),
            Some("calendar") | None => Ok(SchedKind::Calendar),
            Some("sharded") => Ok(SchedKind::Sharded { shards: 0 }),
            Some(other) => {
                if let Some(n) = other.strip_prefix("sharded:") {
                    if let Ok(shards) = n.parse::<u16>() {
                        return Ok(SchedKind::Sharded { shards });
                    }
                }
                Err(format!(
                    "CONTRARIAN_SCHED must be one of `heap`, `calendar`, `sharded`, \
                     `sharded:<count>` (or unset), got `{other}`"
                ))
            }
        }
    }

    /// Reads [`contrarian_runtime::env::SCHED`] from the environment; an
    /// unrecognized value is a hard error (see [`SchedKind::parse`]).
    pub fn from_env() -> Self {
        let value = contrarian_runtime::env::var(contrarian_runtime::env::SCHED);
        Self::parse(value.as_deref()).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The per-shard event-queue flavour this mode runs on: the sharded
    /// engine gives every shard its own calendar queue.
    pub(crate) fn queue_kind(self) -> SchedKind {
        match self {
            SchedKind::Heap => SchedKind::Heap,
            SchedKind::Calendar | SchedKind::Sharded { .. } => SchedKind::Calendar,
        }
    }
}

struct Entry<T> {
    t: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// The event queue behind one [`crate::Sim`] event loop: one of the two
/// scheduler implementations, with identical `(t, seq)` pop order.
pub struct EventQueue<T>(Inner<T>);

enum Inner<T> {
    Heap(BinaryHeap<Entry<T>>),
    Calendar(CalendarQueue<T>),
}

impl<T> EventQueue<T> {
    pub fn new(kind: SchedKind) -> Self {
        EventQueue(match kind.queue_kind() {
            SchedKind::Heap => Inner::Heap(BinaryHeap::new()),
            _ => Inner::Calendar(CalendarQueue::new()),
        })
    }

    /// Inserts an event. `t` must be ≥ the `t` of the last pop, and
    /// `(t, seq)` must be unique across all pushes (the simulator's
    /// source-attributed event keys are).
    #[inline]
    pub fn push(&mut self, t: u64, seq: u64, item: T) {
        match &mut self.0 {
            Inner::Heap(h) => h.push(Entry { t, seq, item }),
            Inner::Calendar(c) => c.push(t, seq, item),
        }
    }

    /// Removes and returns the earliest `(t, seq)` event.
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        match &mut self.0 {
            Inner::Heap(h) => h.pop().map(|e| (e.t, e.seq, e.item)),
            Inner::Calendar(c) => c.pop(),
        }
    }

    /// Timestamp of the earliest pending event. Takes `&mut self` because
    /// the calendar queue may rotate its wheel to find it — observationally
    /// pure.
    #[inline]
    pub fn peek_t(&mut self) -> Option<u64> {
        self.peek_key().map(|(t, _)| t)
    }

    /// `(t, seq)` key of the earliest pending event (same rotation caveat
    /// as [`EventQueue::peek_t`]). The sharded engine uses the full key to
    /// pick the globally minimal event across shard queues in lockstep
    /// mode.
    #[inline]
    pub fn peek_key(&mut self) -> Option<(u64, u64)> {
        match &mut self.0 {
            Inner::Heap(h) => h.peek().map(|e| (e.t, e.seq)),
            Inner::Calendar(c) => c.peek_key(),
        }
    }

    pub fn len(&self) -> usize {
        match &self.0 {
            Inner::Heap(h) => h.len(),
            Inner::Calendar(c) => c.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// See the module docs for the design.
pub struct CalendarQueue<T> {
    /// Same-tick fast path: events with `t` equal to the last popped time.
    /// A small heap (a handful of worker hand-offs), ordered like `cur`.
    due: BinaryHeap<Entry<T>>,
    /// The current bucket, totally ordered.
    cur: BinaryHeap<Entry<T>>,
    /// Future buckets within the horizon, unsorted.
    wheel: Vec<Vec<Entry<T>>>,
    /// Total events parked in `wheel`.
    wheel_len: usize,
    /// Events at or past the horizon.
    overflow: BinaryHeap<Entry<T>>,
    /// Virtual-time start of the current bucket.
    bucket_start: u64,
    /// Ring index of the current bucket.
    cur_idx: usize,
    /// `t` of the most recent pop (0 before the first).
    last_pop_t: u64,
    len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Bucket width in virtual nanoseconds (power of two). ~16 µs spans a
    /// handful of service times of the calibrated cost model, keeping the
    /// current-bucket heap small without making the wheel spin hot.
    pub const W_NS: u64 = 1 << Self::W_SHIFT;
    const W_SHIFT: u32 = 14;
    /// Ring size (power of two): horizon = `N_BUCKETS * W_NS` ≈ 67 ms.
    const N_BUCKETS: usize = 4096;

    pub fn new() -> Self {
        CalendarQueue {
            due: BinaryHeap::new(),
            cur: BinaryHeap::new(),
            wheel: std::iter::repeat_with(Vec::new)
                .take(Self::N_BUCKETS)
                .collect(),
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            bucket_start: 0,
            cur_idx: 0,
            last_pop_t: 0,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Wheel span in nanoseconds; `bucket_start + SPAN` is the horizon, but
    /// all range tests are phrased as `t - bucket_start < SPAN` (saturating)
    /// so times near `u64::MAX` — far-future timers — never overflow the
    /// addition.
    const SPAN_NS: u64 = (Self::N_BUCKETS as u64) << Self::W_SHIFT;

    #[inline]
    pub fn push(&mut self, t: u64, seq: u64, item: T) {
        debug_assert!(t >= self.last_pop_t, "scheduling into the past");
        self.len += 1;
        let e = Entry { t, seq, item };
        // `t` can sit below `bucket_start` right after a horizon jump (the
        // pop cursor lags the jump); saturating_sub folds that case into
        // the current-bucket heap, which tolerates early times.
        let off_ns = t.saturating_sub(self.bucket_start);
        if t == self.last_pop_t {
            self.due.push(e);
        } else if off_ns < Self::W_NS {
            self.cur.push(e);
        } else if off_ns < Self::SPAN_NS {
            let off = (off_ns >> Self::W_SHIFT) as usize;
            let idx = (self.cur_idx + off) & (Self::N_BUCKETS - 1);
            self.wheel[idx].push(e);
            self.wheel_len += 1;
        } else {
            self.overflow.push(e);
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        loop {
            // The global minimum is the smaller of the same-tick lane's
            // top and the current bucket's heap top (all other events sit
            // in strictly later buckets or past the horizon).
            let take_due = match (self.due.peek(), self.cur.peek()) {
                (Some(d), Some(c)) => (d.t, d.seq) < (c.t, c.seq),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => {
                    if !self.advance() {
                        return None;
                    }
                    continue;
                }
            };
            let e = if take_due {
                self.due.pop().expect("checked peek")
            } else {
                self.cur.pop().expect("checked peek")
            };
            self.last_pop_t = e.t;
            self.len -= 1;
            return Some((e.t, e.seq, e.item));
        }
    }

    /// `(t, seq)` of the earliest pending event (rotates the wheel if the
    /// current bucket is exhausted).
    pub fn peek_key(&mut self) -> Option<(u64, u64)> {
        loop {
            let key = match (self.due.peek(), self.cur.peek()) {
                (Some(d), Some(c)) => Some((d.t, d.seq).min((c.t, c.seq))),
                (Some(d), None) => Some((d.t, d.seq)),
                (None, Some(c)) => Some((c.t, c.seq)),
                (None, None) => None,
            };
            if key.is_some() {
                return key;
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Rotates the wheel to the next non-empty bucket and loads it into
    /// `cur`. Returns false when no events remain anywhere.
    fn advance(&mut self) -> bool {
        debug_assert!(self.due.is_empty() && self.cur.is_empty());
        if self.wheel_len == 0 {
            // Wheel drained: jump the horizon straight to the overflow's
            // earliest event (far-future timers in an otherwise idle
            // cluster).
            if self.overflow.is_empty() {
                return false;
            }
            let t_min = self.overflow.peek().expect("non-empty").t;
            self.bucket_start = t_min & !(Self::W_NS - 1);
            self.migrate_overflow();
            debug_assert!(!self.wheel[self.cur_idx].is_empty());
        } else {
            loop {
                self.cur_idx = (self.cur_idx + 1) & (Self::N_BUCKETS - 1);
                self.bucket_start += Self::W_NS;
                self.migrate_overflow();
                if !self.wheel[self.cur_idx].is_empty() {
                    break;
                }
            }
        }
        let bucket = std::mem::take(&mut self.wheel[self.cur_idx]);
        self.wheel_len -= bucket.len();
        self.cur = BinaryHeap::from(bucket);
        true
    }

    /// Drains overflow events that now fall inside the horizon into their
    /// wheel buckets. The range test is subtraction-based for the same
    /// `u64::MAX`-safety reason as [`Self::push`]: with `bucket_start` in
    /// the top wheel-span of the u64 range, `bucket_start + SPAN_NS` would
    /// wrap and strand far-future events in the overflow heap forever.
    fn migrate_overflow(&mut self) {
        while let Some(e) = self.overflow.peek() {
            if e.t.saturating_sub(self.bucket_start) >= Self::SPAN_NS {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            let off = (e.t.saturating_sub(self.bucket_start) >> Self::W_SHIFT) as usize;
            let idx = (self.cur_idx + off) & (Self::N_BUCKETS - 1);
            self.wheel[idx].push(e);
            self.wheel_len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_kind_parses_valid_values_and_default() {
        assert_eq!(SchedKind::parse(Some("heap")).unwrap(), SchedKind::Heap);
        assert_eq!(
            SchedKind::parse(Some("calendar")).unwrap(),
            SchedKind::Calendar
        );
        assert_eq!(
            SchedKind::parse(Some("sharded")).unwrap(),
            SchedKind::Sharded { shards: 0 }
        );
        assert_eq!(
            SchedKind::parse(Some("sharded:4")).unwrap(),
            SchedKind::Sharded { shards: 4 }
        );
        assert_eq!(SchedKind::parse(None).unwrap(), SchedKind::Calendar);
    }

    #[test]
    fn sched_kind_rejects_unknown_values_listing_the_valid_set() {
        // A typo must be a hard error, not a silent calendar fallback (an
        // engine comparison would measure calendar vs itself).
        for bogus in ["Heap", "heapq", "wheel", "", "sharded:", "sharded:x"] {
            let err = SchedKind::parse(Some(bogus)).unwrap_err();
            assert!(err.contains("`heap`"), "{err}");
            assert!(err.contains("`calendar`"), "{err}");
            assert!(err.contains("`sharded`"), "{err}");
            assert!(err.contains(bogus), "{err}");
        }
    }

    #[test]
    fn sharded_mode_runs_on_calendar_queues() {
        assert_eq!(
            SchedKind::Sharded { shards: 3 }.queue_kind(),
            SchedKind::Calendar
        );
        assert_eq!(SchedKind::Heap.queue_kind(), SchedKind::Heap);
    }

    fn drain<T>(q: &mut EventQueue<T>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((t, seq, _)) = q.pop() {
            out.push((t, seq));
        }
        out
    }

    #[test]
    fn calendar_pops_in_t_seq_order() {
        let mut q: EventQueue<u32> = EventQueue::new(SchedKind::Calendar);
        // Same tick, far future, next bucket, current bucket.
        q.push(0, 1, 0);
        q.push(500_000_000, 2, 0); // overflow (beyond 67 ms horizon)
        q.push(CalendarQueue::<u32>::W_NS * 3, 3, 0);
        q.push(100, 4, 0);
        q.push(0, 5, 0);
        let order = drain(&mut q);
        assert_eq!(
            order,
            vec![
                (0, 1),
                (0, 5),
                (100, 4),
                (CalendarQueue::<u32>::W_NS * 3, 3),
                (500_000_000, 2)
            ]
        );
    }

    #[test]
    fn same_tick_ties_break_by_seq_across_lanes() {
        let mut q: EventQueue<u32> = EventQueue::new(SchedKind::Calendar);
        q.push(100, 1, 0); // lands in cur
        assert_eq!(q.pop().map(|e| e.1), Some(1));
        // now == 100; a cur-resident event at 100 with seq 2, then due events.
        q.push(200, 2, 0);
        q.push(100, 3, 0); // due lane
        q.push(100, 4, 0); // due lane
        assert_eq!(q.pop().map(|e| e.1), Some(3));
        assert_eq!(q.pop().map(|e| e.1), Some(4));
        assert_eq!(q.pop().map(|e| e.1), Some(2));
    }

    #[test]
    fn due_lane_orders_out_of_order_keys() {
        // Source-attributed keys are not monotone in push order: a
        // same-tick event pushed *later* may carry a *smaller* key (a
        // lower-numbered node scheduling behind a higher-numbered one).
        // The due lane must pop by key, not insertion order.
        let mut q: EventQueue<u32> = EventQueue::new(SchedKind::Calendar);
        q.push(50, 10, 0);
        assert_eq!(q.pop().map(|e| e.1), Some(10));
        q.push(50, 9, 0); // due lane, pushed first, larger key below
        q.push(50, 3, 0); // due lane, pushed second, smaller key
        assert_eq!(q.pop().map(|e| e.1), Some(3));
        assert_eq!(q.pop().map(|e| e.1), Some(9));
    }

    #[test]
    fn heap_and_calendar_agree_on_a_dense_schedule() {
        let mut heap: EventQueue<u32> = EventQueue::new(SchedKind::Heap);
        let mut cal: EventQueue<u32> = EventQueue::new(SchedKind::Calendar);
        // Deterministic pseudo-random interleaving of pushes and pops,
        // with keys drawn pseudo-randomly (unique, but *not* monotone in
        // push order — the shape source-attributed keys have).
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rnd = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut seq = 0;
        let mut now = 0u64;
        for _ in 0..5_000 {
            if rnd() % 3 != 0 {
                seq += 1;
                let dt = match rnd() % 4 {
                    0 => 0,
                    1 => rnd() % 1_000,
                    2 => rnd() % 1_000_000,
                    _ => rnd() % 200_000_000,
                };
                // Unique key that scrambles push order within a tick.
                let key = (rnd() % 1024) << 40 | seq;
                heap.push(now + dt, key, 0);
                cal.push(now + dt, key, 0);
            } else {
                let a = heap.pop().map(|e| (e.0, e.1));
                let b = cal.pop().map(|e| (e.0, e.1));
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = t;
                }
            }
        }
        assert_eq!(drain(&mut heap), drain(&mut cal));
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q: EventQueue<u32> = EventQueue::new(SchedKind::Calendar);
        q.push(70_000_000, 1, 0);
        assert_eq!(q.peek_t(), Some(70_000_000));
        assert_eq!(q.peek_key(), Some((70_000_000, 1)));
        assert_eq!(q.pop().map(|e| e.0), Some(70_000_000));
        assert_eq!(q.peek_t(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn idle_cluster_jumps_to_far_timers() {
        let mut q: EventQueue<u32> = EventQueue::new(SchedKind::Calendar);
        // Two sparse GC-style timers, hours of virtual time apart.
        q.push(3_600_000_000_000, 1, 0);
        q.push(7_200_000_000_000, 2, 0);
        assert_eq!(q.pop().map(|e| e.0), Some(3_600_000_000_000));
        assert_eq!(q.pop().map(|e| e.0), Some(7_200_000_000_000));
        assert_eq!(q.pop().map(|e| e.0), None);
    }
}
