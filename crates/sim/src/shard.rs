//! The per-shard execution core of the sharded simulator.
//!
//! A [`crate::Sim`] is a set of [`Shard`]s. Each shard owns a disjoint
//! group of DCs: their nodes, the calendar queue of their pending events,
//! their backlog slab, and the FIFO state of every link *originating* at
//! their nodes. The single-threaded engines are the one-shard special case
//! — there is exactly one event-processing code path, which is what makes
//! "sharded is bit-identical to single-threaded" a structural property
//! instead of a parallel-maintenance burden.
//!
//! ## Determinism: source-attributed event keys
//!
//! A discrete-event simulator needs a total order over events; ties at
//! equal virtual time must break deterministically. The pre-shard engine
//! used one global insertion counter — inherently sequential, since the
//! counter value depends on the exact global interleaving of handler
//! executions. Sharded execution replaces it with a *source-attributed
//! key*: every event is stamped `(t, source-node-id ∥ per-source-counter)`
//! at push time, where the counter belongs to the node whose handler (or
//! arrival processing) created the event. Two properties make this
//! engine-independent:
//!
//! * a node's counter advances only while *that node's* events execute, so
//!   its value is a function of the node's own event sequence;
//! * a node's event sequence is determined by the keys of its incoming
//!   events — which, by induction over `(t, key)` order, are identical
//!   under any engine.
//!
//! Ties at equal `t` therefore break by `(source id, source counter)`:
//! arbitrary, but the *same* arbitrary under one thread or eight. Cross-
//! shard messages carry their precomputed key with them, so the receiving
//! shard inserts them exactly where the single-threaded engine would have.
//!
//! ## Conservative windows
//!
//! Shards synchronize with classic conservative parallel-DES lookahead,
//! generalized to per-link bounds. Each shard owns a *group*: a DC (the
//! default), or a partition/client range of one DC when
//! `CONTRARIAN_SHARD_GROUPS` splits DCs further. A
//! [`contrarian_runtime::cost::LookaheadMatrix`] entry `(i, j)` lower-bounds
//! the arrival delta of any message shard `i` sends shard `j` — the
//! minimum link latency between their DC sets (CPU, wire and FIFO terms
//! only push arrivals later), metric-closed so relayed influence is
//! covered too. Each round, shard `j` runs every event strictly before its
//! *horizon* — the minimum over peers `i` of the incoming chain
//! `next_t_i + L(i, j)` *and* the bounce-back
//! `next_t_j + L(j, i) + L(i, j)` (replies provoked by `j`'s own pending
//! sends) — without communication: no message can reach `j` inside that
//! range, whichever shard's pending work it originates from. At the
//! barrier the
//! outboxes are exchanged — the engine asserts that nothing lands inside
//! its destination's just-run window — and the next round recomputes
//! horizons from the new per-shard clocks. The scalar engine is the
//! uniform-matrix special case (one global window at the global minimum);
//! a zero minimum off-diagonal entry (degenerate cost models with free
//! links between co-located groups) means some pair has no usable window,
//! and the engine falls back to lockstep: one globally minimal event at a
//! time, exchanging after every step — plain sequential simulation with
//! extra steps.

use crate::sched::{EventQueue, SchedKind};
use contrarian_runtime::actor::{Actor, ActorCtx, TimerKind};
use contrarian_runtime::cost::CostModel;
use contrarian_runtime::history::TaggedEvent;
use contrarian_runtime::metrics::Metrics;
use contrarian_runtime::trace::{trace_cap_from_env, TraceRing};
use contrarian_runtime::SimMessage;
use contrarian_types::{Addr, HistoryEvent, NodeKind, TraceEvent, TraceKind};
use rand::rngs::SmallRng;
use std::collections::VecDeque;

/// Bits of an event key holding the per-source counter; the source node id
/// occupies the bits above. 2^20 nodes and 2^44 events per node both sit
/// orders of magnitude beyond any cluster this engine will see.
const KEY_SEQ_BITS: u32 = 44;

#[inline]
fn event_key(src: u32, seq: u64) -> u64 {
    debug_assert!(src < 1 << (64 - KEY_SEQ_BITS), "node id overflow");
    debug_assert!(seq < 1 << KEY_SEQ_BITS, "per-node event counter overflow");
    ((src as u64) << KEY_SEQ_BITS) | seq
}

pub(crate) enum EvKind<M> {
    /// A message reached a node's NIC.
    Arrive { to: usize, from: Addr, msg: M },
    /// A message's service time elapsed; run the handler.
    ServiceDone { node: usize, from: Addr, msg: M },
    /// A server worker finished its send phase; pull the next queued job.
    WorkerFree { node: usize },
    /// A timer fired.
    Timer { node: usize, kind: TimerKind },
}

/// Interned routing: `Addr → global node id` as pure arithmetic on two flat
/// tables, built once at [`crate::Sim::start`]. Replaces the per-send
/// `HashMap` lookup of the original engine.
pub(crate) struct RouteTable {
    /// `servers[dc * server_stride + partition]`, `u32::MAX` = absent.
    servers: Vec<u32>,
    /// `clients[dc * client_stride + idx]`, `u32::MAX` = absent.
    clients: Vec<u32>,
    server_stride: usize,
    client_stride: usize,
}

impl RouteTable {
    const ABSENT: u32 = u32::MAX;

    pub(crate) fn build(addrs: impl Iterator<Item = Addr> + Clone) -> Self {
        let mut dcs = 0usize;
        let mut max_server = 0usize;
        let mut max_client = 0usize;
        for a in addrs.clone() {
            dcs = dcs.max(a.dc.index() + 1);
            match a.kind {
                NodeKind::Server => max_server = max_server.max(a.idx as usize + 1),
                NodeKind::Client => max_client = max_client.max(a.idx as usize + 1),
            }
        }
        let mut t = RouteTable {
            servers: vec![Self::ABSENT; dcs * max_server],
            clients: vec![Self::ABSENT; dcs * max_client],
            server_stride: max_server,
            client_stride: max_client,
        };
        for (i, a) in addrs.enumerate() {
            match a.kind {
                NodeKind::Server => {
                    t.servers[a.dc.index() * t.server_stride + a.idx as usize] = i as u32
                }
                NodeKind::Client => {
                    t.clients[a.dc.index() * t.client_stride + a.idx as usize] = i as u32
                }
            }
        }
        t
    }

    #[inline]
    fn get(&self, addr: Addr) -> Option<usize> {
        let (table, stride) = match addr.kind {
            NodeKind::Server => (&self.servers, self.server_stride),
            NodeKind::Client => (&self.clients, self.client_stride),
        };
        // The idx bound matters: without it an out-of-range index would
        // alias into the next DC's row instead of failing like the HashMap
        // lookup this table replaced.
        if addr.idx as usize >= stride {
            return None;
        }
        let slot = *table.get(addr.dc.index() * stride + addr.idx as usize)?;
        (slot != Self::ABSENT).then_some(slot as usize)
    }
}

/// Shared, read-only cluster geometry every shard routes through: the
/// address table, the global-id → (shard, local-slot) map, and the flat
/// DC-pair latency table the hot send path reads instead of re-resolving
/// `CostModel::link_latency` (overrides are a linear scan) per message.
pub(crate) struct Routing {
    table: RouteTable,
    /// `global id → (shard, local index)`.
    locate: Vec<(u32, u32)>,
    /// `global id → address`, registration order.
    pub(crate) addrs: Vec<Addr>,
    /// `dc_lat[from * n_dcs + to]` = one-way latency, hop on the diagonal.
    dc_lat: Vec<u64>,
    n_dcs: usize,
}

impl Routing {
    pub(crate) fn empty() -> Self {
        Routing {
            table: RouteTable {
                servers: Vec::new(),
                clients: Vec::new(),
                server_stride: 0,
                client_stride: 0,
            },
            locate: Vec::new(),
            addrs: Vec::new(),
            dc_lat: Vec::new(),
            n_dcs: 0,
        }
    }

    pub(crate) fn build(addrs: Vec<Addr>, locate: Vec<(u32, u32)>, cost: &CostModel) -> Self {
        let table = RouteTable::build(addrs.iter().copied());
        let n_dcs = addrs.iter().map(|a| a.dc.index() + 1).max().unwrap_or(0);
        let mut dc_lat = vec![0u64; n_dcs * n_dcs];
        for from in 0..n_dcs {
            for to in 0..n_dcs {
                dc_lat[from * n_dcs + to] = cost.link_latency(from as u8, to as u8);
            }
        }
        Routing {
            table,
            locate,
            addrs,
            dc_lat,
            n_dcs,
        }
    }

    /// One-way network latency between two (registered) DCs.
    #[inline]
    pub(crate) fn link_latency(
        &self,
        from: contrarian_types::DcId,
        to: contrarian_types::DcId,
    ) -> u64 {
        self.dc_lat[from.index() * self.n_dcs + to.index()]
    }

    pub(crate) fn n_nodes(&self) -> usize {
        self.addrs.len()
    }

    /// Resolves an address to its global node id.
    #[inline]
    pub(crate) fn global(&self, addr: Addr) -> usize {
        self.table
            .get(addr)
            .unwrap_or_else(|| panic!("unknown addr {addr}"))
    }

    #[inline]
    pub(crate) fn locate(&self, global: usize) -> (usize, usize) {
        let (s, l) = self.locate[global];
        (s as usize, l as usize)
    }
}

pub(crate) struct NodeSlot<A> {
    pub(crate) addr: Addr,
    /// Registration-order id, stable across engines — the high bits of
    /// every event key this node creates.
    pub(crate) global_id: u32,
    pub(crate) actor: A,
    /// Worker threads; clients are "infinite" (no queueing — client machines
    /// are not the bottleneck).
    workers: u32,
    busy: u32,
    /// Messages that arrived while all workers were busy, FIFO.
    queue: VecDeque<(Addr, u64)>, // (from, backlog slot)
    /// This node's deterministic randomness stream (same derivation as the
    /// live runtimes: `contrarian_runtime::node_seed`).
    rng: SmallRng,
    /// Events created so far by this node — the low bits of its keys.
    push_seq: u64,
    /// History records created so far by this node (canonical-order tag).
    record_seq: u64,
    /// This node's trace ring (engine- and shard-count-independent: its
    /// `seq` counter advances only while this node's events execute).
    pub(crate) trace: TraceRing,
}

impl<A> NodeSlot<A> {
    pub(crate) fn new(addr: Addr, global_id: u32, actor: A, workers: u32, rng: SmallRng) -> Self {
        NodeSlot {
            addr,
            global_id,
            actor,
            workers,
            busy: 0,
            queue: VecDeque::new(),
            rng,
            push_seq: 0,
            record_seq: 0,
            trace: TraceRing::new(trace_cap_from_env()),
        }
    }
}

/// A message crossing a shard boundary, parked in the sender's outbox
/// until the next window barrier. Carries its precomputed arrival key so
/// the receiving shard inserts it exactly where a single-threaded engine
/// would have.
pub(crate) struct CrossShardMsg<M> {
    pub(crate) t: u64,
    pub(crate) key: u64,
    pub(crate) shard: usize,
    pub(crate) to_local: usize,
    pub(crate) from: Addr,
    pub(crate) msg: M,
}

/// One event loop of the engine: a DC group's nodes, queue, and link state.
pub(crate) struct Shard<A: Actor> {
    pub(crate) id: usize,
    pub(crate) now: u64,
    pub(crate) queue: EventQueue<EvKind<A::Msg>>,
    pub(crate) nodes: Vec<NodeSlot<A>>,
    /// FIFO enforcement: last scheduled arrival per (local sender, global
    /// receiver) link. Rows are allocated on a sender's first send, so a
    /// cluster never pays the full `n × n` table up front and each shard
    /// only ever holds rows for its own nodes.
    pub(crate) links: Vec<Vec<u64>>,
    /// Backlogged messages awaiting a worker (slab, free-list reuse).
    pub(crate) backlog: Vec<Option<A::Msg>>,
    pub(crate) backlog_free: Vec<u64>,
    /// Reusable handler scratch (outbox + timer buffers).
    scratch_out: Vec<(Addr, A::Msg)>,
    scratch_timers: Vec<(u64, TimerKind)>,
    /// Cross-shard sends of the current window, drained at the barrier.
    pub(crate) outbox: Vec<CrossShardMsg<A::Msg>>,
    pub(crate) cost: CostModel,
    pub(crate) metrics: Metrics,
    pub(crate) history: Vec<TaggedEvent>,
    pub(crate) events_processed: u64,
    pub(crate) recording: bool,
    pub(crate) tracing: bool,
    pub(crate) stopped: bool,
}

impl<A: Actor> Shard<A> {
    pub(crate) fn new(id: usize, queue_kind: SchedKind, cost: CostModel) -> Self {
        Shard {
            id,
            now: 0,
            queue: EventQueue::new(queue_kind),
            nodes: Vec::new(),
            links: Vec::new(),
            backlog: Vec::new(),
            backlog_free: Vec::new(),
            scratch_out: Vec::new(),
            scratch_timers: Vec::new(),
            outbox: Vec::new(),
            cost,
            metrics: Metrics::new(),
            history: Vec::new(),
            events_processed: 0,
            recording: false,
            tracing: false,
            stopped: false,
        }
    }

    /// Takes every node's buffered trace events (one batch per node;
    /// identity counters keep running).
    pub(crate) fn drain_trace(&mut self) -> Vec<Vec<TraceEvent>> {
        self.nodes.iter_mut().map(|n| n.trace.drain()).collect()
    }

    /// Allocates the next event key for a local node.
    #[inline]
    pub(crate) fn alloc_key(&mut self, node: usize) -> u64 {
        let slot = &mut self.nodes[node];
        let key = event_key(slot.global_id, slot.push_seq);
        slot.push_seq += 1;
        key
    }

    #[inline]
    fn push_from(&mut self, node: usize, t: u64, kind: EvKind<A::Msg>) {
        let key = self.alloc_key(node);
        self.queue.push(t, key, kind);
    }

    /// Runs a node's `on_start` (registration-order bring-up).
    pub(crate) fn start_node(&mut self, routing: &Routing, node: usize) {
        self.with_ctx(routing, node, 0, |actor, ctx| actor.on_start(ctx));
    }

    /// Processes every pending event with `t < end_excl`. Cross-shard
    /// sends accumulate in the outbox; everything else is handled locally.
    pub(crate) fn run_window(&mut self, routing: &Routing, end_excl: u64) {
        while let Some(t) = self.queue.peek_t() {
            if t >= end_excl {
                break;
            }
            self.step_one(routing);
        }
    }

    /// Pops and processes exactly one event. Returns its time.
    pub(crate) fn step_one(&mut self, routing: &Routing) -> Option<u64> {
        let (t, _key, kind) = self.queue.pop()?;
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.events_processed += 1;
        match kind {
            EvKind::Arrive { to, from, msg } => self.on_arrive(routing, to, from, msg),
            EvKind::ServiceDone { node, from, msg } => {
                self.on_service_done(routing, node, from, msg)
            }
            EvKind::WorkerFree { node } => self.on_worker_free(node),
            EvKind::Timer { node, kind } => self.on_timer(routing, node, kind),
        }
        Some(t)
    }

    fn stash_backlog(&mut self, msg: A::Msg) -> u64 {
        if let Some(slot) = self.backlog_free.pop() {
            self.backlog[slot as usize] = Some(msg);
            slot
        } else {
            self.backlog.push(Some(msg));
            (self.backlog.len() - 1) as u64
        }
    }

    fn take_backlog(&mut self, slot: u64) -> A::Msg {
        let msg = self.backlog[slot as usize].take().expect("stashed message");
        self.backlog_free.push(slot);
        msg
    }

    fn on_arrive(&mut self, routing: &Routing, to: usize, from: Addr, msg: A::Msg) {
        if self.metrics.enabled {
            self.metrics.msgs += 1;
            self.metrics.bytes += msg.wire_size() as u64;
        }
        if self.tracing {
            let src = routing.global(from) as u64;
            let slot = &mut self.nodes[to];
            let gid = slot.global_id;
            slot.trace.push(
                self.now,
                gid,
                TraceKind::MsgDeliver,
                src,
                msg.wire_size() as u64,
            );
        }
        let slot = &self.nodes[to];
        if slot.workers == 0 {
            // Client: infinite parallelism, fixed receive cost.
            let c = self.cost.client_rx_ns + self.cost.cpu_bytes(msg.wire_size());
            let t = self.now + c;
            self.push_from(
                to,
                t,
                EvKind::ServiceDone {
                    node: to,
                    from,
                    msg,
                },
            );
        } else if slot.busy < slot.workers {
            self.nodes[to].busy += 1;
            let c = msg.rx_cost(&self.cost);
            if self.metrics.enabled {
                self.metrics.busy_ns += c;
            }
            let t = self.now + c;
            self.push_from(
                to,
                t,
                EvKind::ServiceDone {
                    node: to,
                    from,
                    msg,
                },
            );
        } else {
            let slot_id = self.stash_backlog(msg);
            self.nodes[to].queue.push_back((from, slot_id));
        }
    }

    fn on_service_done(&mut self, routing: &Routing, node: usize, from: Addr, msg: A::Msg) {
        let busy_extra = self.with_ctx(routing, node, 0, |actor, ctx| {
            actor.on_message(ctx, from, msg)
        });
        self.finish_worker(node, busy_extra);
    }

    fn on_worker_free(&mut self, node: usize) {
        let slot = &mut self.nodes[node];
        slot.busy -= 1;
        if slot.busy < slot.workers {
            if let Some((from, slot_id)) = slot.queue.pop_front() {
                self.nodes[node].busy += 1;
                let msg = self.take_backlog(slot_id);
                let c = msg.rx_cost(&self.cost);
                if self.metrics.enabled {
                    self.metrics.busy_ns += c;
                }
                let t = self.now + c;
                self.push_from(node, t, EvKind::ServiceDone { node, from, msg });
            }
        }
    }

    fn on_timer(&mut self, routing: &Routing, node: usize, kind: TimerKind) {
        // Timers run off the worker pool with a small base cost; their sends
        // still pay tx costs (folded into departure spacing).
        self.with_ctx(routing, node, self.cost.timer_ns, |actor, ctx| {
            actor.on_timer(ctx, kind)
        });
    }

    /// Runs a handler inside a context, then applies its outbox/timer
    /// effects. Returns the handler's total send-phase CPU so the caller can
    /// keep the worker busy for it.
    fn with_ctx<F>(&mut self, routing: &Routing, node: usize, base_charge: u64, f: F) -> u64
    where
        F: FnOnce(&mut A, &mut dyn ActorCtx<A::Msg>),
    {
        // The outbox/timer buffers are owned by the shard and reused across
        // handlers: no per-event allocation.
        let mut out = std::mem::take(&mut self.scratch_out);
        let mut timers = std::mem::take(&mut self.scratch_timers);
        debug_assert!(out.is_empty() && timers.is_empty());
        let (addr, gid, is_server, charge) = {
            // Disjoint field borrows: the actor and its rng live in the
            // node slot, the ctx additionally borrows the shard's metrics
            // and history.
            let slot = &mut self.nodes[node];
            let mut ctx = SimCtx {
                now: self.now,
                addr: slot.addr,
                node_id: slot.global_id,
                out: &mut out,
                timers: &mut timers,
                charge: base_charge,
                rng: &mut slot.rng,
                record_seq: &mut slot.record_seq,
                metrics: &mut self.metrics,
                history: &mut self.history,
                recording: self.recording,
                tracing: self.tracing,
                trace_ring: &mut slot.trace,
                stopped: self.stopped,
            };
            f(&mut slot.actor, &mut ctx);
            (slot.addr, slot.global_id, slot.workers > 0, ctx.charge)
        };

        // Send phase: messages depart back-to-back after the handler, each
        // paying its tx cost on the sender's CPU.
        let n = routing.n_nodes();
        // Saturating throughout the send phase: handlers can legitimately
        // run at times near `u64::MAX` (far-future timers), where a wrap
        // would schedule into the past and corrupt the queue invariant.
        let mut depart = self.now.saturating_add(charge);
        for (to, msg) in out.drain(..) {
            let tx = if is_server {
                msg.tx_cost(&self.cost)
            } else {
                self.cost.client_tx_ns + self.cost.cpu_bytes(msg.wire_size())
            };
            depart = depart.saturating_add(tx);
            if is_server && self.metrics.enabled {
                self.metrics.busy_ns += tx;
            }
            let to_global = routing.global(to);
            let latency = routing.link_latency(addr.dc, to.dc);
            let mut arrive = depart
                .saturating_add(latency)
                .saturating_add(self.cost.wire_bytes(msg.wire_size()));
            // FIFO per link; the row is allocated on this sender's first
            // send ever, so idle senders cost nothing.
            let row = &mut self.links[node];
            if row.is_empty() {
                row.resize(n, 0);
            }
            let link = &mut row[to_global];
            if arrive <= *link {
                arrive = link.saturating_add(1);
            }
            *link = arrive;
            if self.tracing {
                self.nodes[node].trace.push(
                    self.now,
                    gid,
                    TraceKind::MsgSend,
                    to_global as u64,
                    msg.wire_size() as u64,
                );
            }
            let key = self.alloc_key(node);
            let (to_shard, to_local) = routing.locate(to_global);
            if to_shard == self.id {
                self.queue.push(
                    arrive,
                    key,
                    EvKind::Arrive {
                        to: to_local,
                        from: addr,
                        msg,
                    },
                );
            } else {
                // Cross-shard: the link latency is at least the lookahead
                // matrix's `(self, to_shard)` entry, so the arrival lies at
                // or beyond the destination's window end.
                self.outbox.push(CrossShardMsg {
                    t: arrive,
                    key,
                    shard: to_shard,
                    to_local,
                    from: addr,
                    msg,
                });
            }
        }
        for (delay, kind) in timers.drain(..) {
            // Saturating: a `u64::MAX` delay means "effectively never" and
            // must park at the end of time, not wrap into the past.
            let t = self.now.saturating_add(delay);
            self.push_from(node, t, EvKind::Timer { node, kind });
        }
        self.scratch_out = out;
        self.scratch_timers = timers;
        if self.metrics.enabled && is_server {
            self.metrics.busy_ns += charge.saturating_sub(base_charge);
        }
        depart - self.now
    }

    fn finish_worker(&mut self, node: usize, busy_extra: u64) {
        if self.nodes[node].workers == 0 {
            return;
        }
        if busy_extra == 0 {
            self.on_worker_free(node);
        } else {
            let t = self.now + busy_extra;
            self.push_from(node, t, EvKind::WorkerFree { node });
        }
    }
}

struct SimCtx<'a, M> {
    now: u64,
    addr: Addr,
    node_id: u32,
    out: &'a mut Vec<(Addr, M)>,
    timers: &'a mut Vec<(u64, TimerKind)>,
    charge: u64,
    rng: &'a mut SmallRng,
    record_seq: &'a mut u64,
    metrics: &'a mut Metrics,
    history: &'a mut Vec<TaggedEvent>,
    recording: bool,
    tracing: bool,
    trace_ring: &'a mut TraceRing,
    stopped: bool,
}

impl<'a, M> ActorCtx<M> for SimCtx<'a, M> {
    fn now(&self) -> u64 {
        self.now
    }

    fn self_addr(&self) -> Addr {
        self.addr
    }

    fn send(&mut self, to: Addr, msg: M) {
        self.out.push((to, msg));
    }

    fn set_timer(&mut self, delay_ns: u64, kind: TimerKind) {
        self.timers.push((delay_ns, kind));
    }

    fn charge(&mut self, ns: u64) {
        self.charge += ns;
    }

    fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    fn record(&mut self, ev: HistoryEvent) {
        if self.recording {
            self.history.push(TaggedEvent {
                t: self.now,
                node: self.node_id,
                seq: *self.record_seq,
                ev,
            });
            *self.record_seq += 1;
        }
    }

    fn recording(&self) -> bool {
        self.recording
    }

    fn tracing(&self) -> bool {
        self.tracing
    }

    fn trace(&mut self, kind: TraceKind, a: u64, b: u64) {
        if self.tracing {
            self.trace_ring.push(self.now, self.node_id, kind, a, b);
        }
    }

    fn stopped(&self) -> bool {
        self.stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_keys_order_by_source_then_counter() {
        assert!(event_key(0, 5) < event_key(1, 0));
        assert!(event_key(3, 1) < event_key(3, 2));
        assert_eq!(event_key(0, 0), 0);
        // Distinct (src, seq) pairs never collide.
        assert_ne!(event_key(1, 0), event_key(0, (1 << KEY_SEQ_BITS) - 1));
    }
}
