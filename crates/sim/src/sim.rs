//! The discrete-event simulation engine.
//!
//! Rebuilt for 100+-partition sweeps (see the crate docs): interned
//! `Addr → index` routing, a flat per-link FIFO table, inline per-node
//! backlog queues, reusable handler scratch buffers, and the calendar-queue
//! scheduler of [`crate::sched`]. Event ordering is exactly the original
//! engine's `(time, sequence)` total order — the heap scheduler is retained
//! as a differential baseline.

use crate::sched::{EventQueue, SchedKind};
use contrarian_runtime::actor::{Actor, ActorCtx, TimerKind};
use contrarian_runtime::cost::{CostModel, SimMessage};
use contrarian_runtime::metrics::Metrics;
use contrarian_runtime::Runtime;
use contrarian_types::{Addr, HistoryEvent, NodeKind, Op};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};

enum EvKind<M> {
    /// A message reached a node's NIC.
    Arrive { to: usize, from: Addr, msg: M },
    /// A message's service time elapsed; run the handler.
    ServiceDone { node: usize, from: Addr, msg: M },
    /// A server worker finished its send phase; pull the next queued job.
    WorkerFree { node: usize },
    /// A timer fired.
    Timer { node: usize, kind: TimerKind },
}

struct NodeSlot<A> {
    addr: Addr,
    actor: A,
    /// Worker threads; clients are "infinite" (no queueing — client machines
    /// are not the bottleneck).
    workers: u32,
    busy: u32,
    /// Messages that arrived while all workers were busy, FIFO.
    queue: VecDeque<(Addr, u64)>, // (from, backlog slot)
}

/// Interned routing: `Addr → node index` as pure arithmetic on two flat
/// tables, built once at [`Sim::start`]. Replaces the per-send `HashMap`
/// lookup of the original engine.
struct RouteTable {
    /// `servers[dc * server_stride + partition]`, `u32::MAX` = absent.
    servers: Vec<u32>,
    /// `clients[dc * client_stride + idx]`, `u32::MAX` = absent.
    clients: Vec<u32>,
    server_stride: usize,
    client_stride: usize,
}

impl RouteTable {
    const ABSENT: u32 = u32::MAX;

    fn build(addrs: impl Iterator<Item = Addr> + Clone) -> Self {
        let mut dcs = 0usize;
        let mut max_server = 0usize;
        let mut max_client = 0usize;
        for a in addrs.clone() {
            dcs = dcs.max(a.dc.index() + 1);
            match a.kind {
                NodeKind::Server => max_server = max_server.max(a.idx as usize + 1),
                NodeKind::Client => max_client = max_client.max(a.idx as usize + 1),
            }
        }
        let mut t = RouteTable {
            servers: vec![Self::ABSENT; dcs * max_server],
            clients: vec![Self::ABSENT; dcs * max_client],
            server_stride: max_server,
            client_stride: max_client,
        };
        for (i, a) in addrs.enumerate() {
            match a.kind {
                NodeKind::Server => {
                    t.servers[a.dc.index() * t.server_stride + a.idx as usize] = i as u32
                }
                NodeKind::Client => {
                    t.clients[a.dc.index() * t.client_stride + a.idx as usize] = i as u32
                }
            }
        }
        t
    }

    #[inline]
    fn get(&self, addr: Addr) -> Option<usize> {
        let (table, stride) = match addr.kind {
            NodeKind::Server => (&self.servers, self.server_stride),
            NodeKind::Client => (&self.clients, self.client_stride),
        };
        // The idx bound matters: without it an out-of-range index would
        // alias into the next DC's row instead of failing like the HashMap
        // lookup this table replaced.
        if addr.idx as usize >= stride {
            return None;
        }
        let slot = *table.get(addr.dc.index() * stride + addr.idx as usize)?;
        (slot != Self::ABSENT).then_some(slot as usize)
    }
}

/// The deterministic cluster simulator. Generic over the protocol's
/// [`Actor`] type; one `Sim` runs one protocol on one cluster.
pub struct Sim<A: Actor> {
    now: u64,
    seq: u64,
    queue: EventQueue<EvKind<A::Msg>>,
    nodes: Vec<NodeSlot<A>>,
    /// Registration-time index; hot-path routing uses `routes` once started.
    index: HashMap<Addr, usize>,
    routes: RouteTable,
    /// FIFO enforcement: last scheduled arrival per (src, dst) link, flat
    /// `n×n` (0 = never used; arrivals are strictly positive).
    links: Vec<u64>,
    /// Backlogged messages awaiting a worker (slab, free-list reuse).
    backlog: Vec<Option<A::Msg>>,
    backlog_free: Vec<u64>,
    /// Reusable handler scratch (outbox + timer buffers).
    scratch_out: Vec<(Addr, A::Msg)>,
    scratch_timers: Vec<(u64, TimerKind)>,
    cost: CostModel,
    rng: SmallRng,
    metrics: Metrics,
    history: Vec<HistoryEvent>,
    recording: bool,
    stopped: bool,
    started: bool,
}

impl<A: Actor> Sim<A> {
    /// A simulator with the scheduler selected by `CONTRARIAN_SCHED`
    /// (calendar queue unless overridden).
    pub fn new(cost: CostModel, seed: u64) -> Self {
        Self::with_scheduler(cost, seed, SchedKind::from_env())
    }

    /// A simulator with an explicit scheduler choice.
    pub fn with_scheduler(cost: CostModel, seed: u64, sched: SchedKind) -> Self {
        Sim {
            now: 0,
            seq: 0,
            queue: EventQueue::new(sched),
            nodes: Vec::new(),
            index: HashMap::new(),
            routes: RouteTable {
                servers: Vec::new(),
                clients: Vec::new(),
                server_stride: 0,
                client_stride: 0,
            },
            links: Vec::new(),
            backlog: Vec::new(),
            backlog_free: Vec::new(),
            scratch_out: Vec::new(),
            scratch_timers: Vec::new(),
            cost,
            rng: SmallRng::seed_from_u64(seed),
            metrics: Metrics::new(),
            history: Vec::new(),
            recording: false,
            stopped: false,
            started: false,
        }
    }

    /// Registers a server node with `workers` worker threads.
    pub fn add_server(&mut self, addr: Addr, actor: A, workers: u32) {
        assert!(addr.is_server());
        assert!(workers > 0);
        self.register(addr, actor, workers);
    }

    /// Registers a client node (infinitely parallel).
    pub fn add_client(&mut self, addr: Addr, actor: A) {
        assert_eq!(addr.kind, NodeKind::Client);
        self.register(addr, actor, 0);
    }

    fn register(&mut self, addr: Addr, actor: A, workers: u32) {
        assert!(!self.started, "cannot add nodes after start");
        assert!(!self.index.contains_key(&addr), "duplicate node {addr}");
        self.index.insert(addr, self.nodes.len());
        self.nodes.push(NodeSlot {
            addr,
            actor,
            workers,
            busy: 0,
            queue: VecDeque::new(),
        });
    }

    /// Builds the routing and link tables, then calls every node's
    /// `on_start` (in registration order).
    pub fn start(&mut self) {
        assert!(!self.started);
        self.started = true;
        self.routes = RouteTable::build(self.nodes.iter().map(|n| n.addr));
        self.links = vec![0; self.nodes.len() * self.nodes.len()];
        for i in 0..self.nodes.len() {
            self.with_ctx(i, 0, |actor, ctx| actor.on_start(ctx));
        }
    }

    pub fn now(&self) -> u64 {
        self.now
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    pub fn history(&self) -> &[HistoryEvent] {
        &self.history
    }

    pub fn take_history(&mut self) -> Vec<HistoryEvent> {
        std::mem::take(&mut self.history)
    }

    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
    }

    /// Tells closed-loop clients to stop issuing new operations.
    pub fn set_stopped(&mut self, stopped: bool) {
        self.stopped = stopped;
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Resolves an address to its node slot (flat table once started).
    #[inline]
    fn route(&self, addr: Addr) -> usize {
        let found = if self.started {
            self.routes.get(addr)
        } else {
            self.index.get(&addr).copied()
        };
        found.unwrap_or_else(|| panic!("unknown addr {addr}"))
    }

    /// Read access to a node's actor (post-run inspection: convergence
    /// checks, protocol statistics).
    pub fn actor(&self, addr: Addr) -> &A {
        &self.nodes[self.route(addr)].actor
    }

    pub fn actor_mut(&mut self, addr: Addr) -> &mut A {
        let i = self.route(addr);
        &mut self.nodes[i].actor
    }

    /// All registered addresses, in registration order.
    pub fn addrs(&self) -> Vec<Addr> {
        self.nodes.iter().map(|n| n.addr).collect()
    }

    /// Injects an external operation into a client node (interactive use).
    pub fn inject_op(&mut self, client: Addr, op: Op) {
        let to = self.route(client);
        let msg = A::inject(op);
        self.push(
            self.now,
            EvKind::Arrive {
                to,
                from: client,
                msg,
            },
        );
    }

    /// Processes a single event. Returns `false` when no events remain.
    pub fn step(&mut self) -> bool {
        let Some((t, _seq, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        match kind {
            EvKind::Arrive { to, from, msg } => self.on_arrive(to, from, msg),
            EvKind::ServiceDone { node, from, msg } => self.on_service_done(node, from, msg),
            EvKind::WorkerFree { node } => self.on_worker_free(node),
            EvKind::Timer { node, kind } => self.on_timer(node, kind),
        }
        true
    }

    /// Runs until virtual time `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: u64) {
        while let Some(next) = self.queue.peek_t() {
            if next > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs until the event queue drains or `max_t` is hit (whichever is
    /// first). Useful to quiesce a cluster whose periodic timers have been
    /// stopped.
    pub fn run_to_quiescence(&mut self, max_t: u64) {
        while self.now <= max_t && self.step() {}
    }

    // ---- internals ----

    fn push(&mut self, t: u64, kind: EvKind<A::Msg>) {
        self.seq += 1;
        self.queue.push(t, self.seq, kind);
    }

    fn stash_backlog(&mut self, msg: A::Msg) -> u64 {
        if let Some(slot) = self.backlog_free.pop() {
            self.backlog[slot as usize] = Some(msg);
            slot
        } else {
            self.backlog.push(Some(msg));
            (self.backlog.len() - 1) as u64
        }
    }

    fn take_backlog(&mut self, slot: u64) -> A::Msg {
        let msg = self.backlog[slot as usize].take().expect("stashed message");
        self.backlog_free.push(slot);
        msg
    }

    fn on_arrive(&mut self, to: usize, from: Addr, msg: A::Msg) {
        if self.metrics.enabled {
            self.metrics.msgs += 1;
            self.metrics.bytes += msg.wire_size() as u64;
        }
        let slot = &mut self.nodes[to];
        if slot.workers == 0 {
            // Client: infinite parallelism, fixed receive cost.
            let c = self.cost.client_rx_ns + self.cost.cpu_bytes(msg.wire_size());
            self.push(
                self.now + c,
                EvKind::ServiceDone {
                    node: to,
                    from,
                    msg,
                },
            );
        } else if slot.busy < slot.workers {
            slot.busy += 1;
            let c = msg.rx_cost(&self.cost);
            if self.metrics.enabled {
                self.metrics.busy_ns += c;
            }
            self.push(
                self.now + c,
                EvKind::ServiceDone {
                    node: to,
                    from,
                    msg,
                },
            );
        } else {
            let slot_id = self.stash_backlog(msg);
            self.nodes[to].queue.push_back((from, slot_id));
        }
    }

    fn on_service_done(&mut self, node: usize, from: Addr, msg: A::Msg) {
        let busy_extra = self.with_ctx(node, 0, |actor, ctx| actor.on_message(ctx, from, msg));
        self.finish_worker(node, busy_extra);
    }

    fn on_worker_free(&mut self, node: usize) {
        let slot = &mut self.nodes[node];
        slot.busy -= 1;
        if slot.busy < slot.workers {
            if let Some((from, slot_id)) = slot.queue.pop_front() {
                self.nodes[node].busy += 1;
                let msg = self.take_backlog(slot_id);
                let c = msg.rx_cost(&self.cost);
                if self.metrics.enabled {
                    self.metrics.busy_ns += c;
                }
                self.push(self.now + c, EvKind::ServiceDone { node, from, msg });
            }
        }
    }

    fn on_timer(&mut self, node: usize, kind: TimerKind) {
        // Timers run off the worker pool with a small base cost; their sends
        // still pay tx costs (folded into departure spacing).
        self.with_ctx(node, self.cost.timer_ns, |actor, ctx| {
            actor.on_timer(ctx, kind)
        });
    }

    /// Runs a handler inside a context, then applies its outbox/timer
    /// effects. Returns the handler's total send-phase CPU so the caller can
    /// keep the worker busy for it.
    fn with_ctx<F>(&mut self, node: usize, base_charge: u64, f: F) -> u64
    where
        F: FnOnce(&mut A, &mut dyn ActorCtx<A::Msg>),
    {
        let addr = self.nodes[node].addr;
        let is_server = self.nodes[node].workers > 0;
        // The outbox/timer buffers are owned by the Sim and reused across
        // handlers: no per-event allocation.
        let mut out = std::mem::take(&mut self.scratch_out);
        let mut timers = std::mem::take(&mut self.scratch_timers);
        debug_assert!(out.is_empty() && timers.is_empty());
        let mut ctx = SimCtx {
            now: self.now,
            addr,
            out: &mut out,
            timers: &mut timers,
            charge: base_charge,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            history: &mut self.history,
            recording: self.recording,
            stopped: self.stopped,
        };
        // Disjoint field borrows: the actor lives in self.nodes, the ctx
        // borrows self.rng / self.metrics / self.history.
        let actor = &mut self.nodes[node].actor;
        f(actor, &mut ctx);
        let charge = ctx.charge;

        // Send phase: messages depart back-to-back after the handler, each
        // paying its tx cost on the sender's CPU.
        let n = self.nodes.len();
        let mut depart = self.now + charge;
        for (to, msg) in out.drain(..) {
            let tx = if is_server {
                msg.tx_cost(&self.cost)
            } else {
                self.cost.client_tx_ns + self.cost.cpu_bytes(msg.wire_size())
            };
            depart += tx;
            if is_server && self.metrics.enabled {
                self.metrics.busy_ns += tx;
            }
            let to_idx = self.route(to);
            let latency = if to.dc == addr.dc {
                self.cost.hop_latency_ns
            } else {
                self.cost.interdc_latency_ns
            };
            let mut arrive = depart + latency + self.cost.wire_bytes(msg.wire_size());
            // FIFO per link.
            let link = &mut self.links[node * n + to_idx];
            if arrive <= *link {
                arrive = *link + 1;
            }
            *link = arrive;
            self.push(
                arrive,
                EvKind::Arrive {
                    to: to_idx,
                    from: addr,
                    msg,
                },
            );
        }
        for (delay, kind) in timers.drain(..) {
            self.push(self.now + delay, EvKind::Timer { node, kind });
        }
        self.scratch_out = out;
        self.scratch_timers = timers;
        if self.metrics.enabled && is_server {
            self.metrics.busy_ns += charge.saturating_sub(base_charge);
        }
        depart - self.now
    }

    fn finish_worker(&mut self, node: usize, busy_extra: u64) {
        if self.nodes[node].workers == 0 {
            return;
        }
        if busy_extra == 0 {
            self.on_worker_free(node);
        } else {
            self.push(self.now + busy_extra, EvKind::WorkerFree { node });
        }
    }
}

impl<A: Actor> Runtime<A> for Sim<A> {
    fn now(&self) -> u64 {
        self.now
    }

    fn send(&mut self, from: Addr, to: Addr, msg: A::Msg) {
        let to_idx = self.route(to);
        self.push(
            self.now,
            EvKind::Arrive {
                to: to_idx,
                from,
                msg,
            },
        );
    }

    fn stop_issuing(&mut self) {
        self.set_stopped(true);
    }

    fn addrs(&self) -> Vec<Addr> {
        Sim::addrs(self)
    }
}

struct SimCtx<'a, M> {
    now: u64,
    addr: Addr,
    out: &'a mut Vec<(Addr, M)>,
    timers: &'a mut Vec<(u64, TimerKind)>,
    charge: u64,
    rng: &'a mut SmallRng,
    metrics: &'a mut Metrics,
    history: &'a mut Vec<HistoryEvent>,
    recording: bool,
    stopped: bool,
}

impl<'a, M> ActorCtx<M> for SimCtx<'a, M> {
    fn now(&self) -> u64 {
        self.now
    }

    fn self_addr(&self) -> Addr {
        self.addr
    }

    fn send(&mut self, to: Addr, msg: M) {
        self.out.push((to, msg));
    }

    fn set_timer(&mut self, delay_ns: u64, kind: TimerKind) {
        self.timers.push((delay_ns, kind));
    }

    fn charge(&mut self, ns: u64) {
        self.charge += ns;
    }

    fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    fn record(&mut self, ev: HistoryEvent) {
        if self.recording {
            self.history.push(ev);
        }
    }

    fn recording(&self) -> bool {
        self.recording
    }

    fn stopped(&self) -> bool {
        self.stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contrarian_runtime::cost::MsgClass;
    use contrarian_types::DcId;

    /// A ping-pong actor: servers echo, the client counts echoes.
    struct Echo {
        pongs: u64,
        peer: Option<Addr>,
    }

    #[derive(Clone)]
    struct Ping(u32);

    impl SimMessage for Ping {
        fn wire_size(&self) -> usize {
            32
        }
        fn class(&self) -> MsgClass {
            MsgClass::Data
        }
    }

    impl Actor for Echo {
        type Msg = Ping;

        fn on_start(&mut self, ctx: &mut dyn ActorCtx<Ping>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, Ping(0));
            }
        }

        fn on_message(&mut self, ctx: &mut dyn ActorCtx<Ping>, from: Addr, msg: Ping) {
            if ctx.self_addr().is_server() {
                ctx.send(from, Ping(msg.0 + 1));
            } else {
                self.pongs += 1;
                if msg.0 < 9 {
                    ctx.send(from, Ping(msg.0 + 1));
                }
            }
        }

        fn on_timer(&mut self, _ctx: &mut dyn ActorCtx<Ping>, _kind: TimerKind) {}

        fn inject(_op: Op) -> Ping {
            Ping(0)
        }
    }

    fn mk_with(sched: SchedKind) -> Sim<Echo> {
        let mut sim = Sim::with_scheduler(CostModel::functional(), 1, sched);
        let server = Addr::server(DcId(0), contrarian_types::PartitionId(0));
        let client = Addr::client(DcId(0), 0);
        sim.add_server(
            server,
            Echo {
                pongs: 0,
                peer: None,
            },
            1,
        );
        sim.add_client(
            client,
            Echo {
                pongs: 0,
                peer: Some(server),
            },
        );
        sim
    }

    fn mk() -> Sim<Echo> {
        mk_with(SchedKind::Calendar)
    }

    #[test]
    fn ping_pong_runs_to_completion() {
        for sched in [SchedKind::Calendar, SchedKind::Heap] {
            let mut sim = mk_with(sched);
            sim.start();
            sim.run_to_quiescence(u64::MAX);
            let client = Addr::client(DcId(0), 0);
            assert_eq!(
                sim.actor(client).pongs,
                5,
                "pings 0,2,4,6,8 produce 5 pongs ({sched:?})"
            );
        }
    }

    #[test]
    fn identical_seeds_are_deterministic_across_schedulers() {
        let run = |seed, sched| {
            let mut sim = Sim::with_scheduler(CostModel::calibrated(), seed, sched);
            let server = Addr::server(DcId(0), contrarian_types::PartitionId(0));
            let client = Addr::client(DcId(0), 0);
            sim.add_server(
                server,
                Echo {
                    pongs: 0,
                    peer: None,
                },
                2,
            );
            sim.add_client(
                client,
                Echo {
                    pongs: 0,
                    peer: Some(server),
                },
            );
            sim.start();
            sim.run_to_quiescence(u64::MAX);
            sim.now()
        };
        assert_eq!(run(42, SchedKind::Calendar), run(42, SchedKind::Calendar));
        assert_eq!(run(42, SchedKind::Calendar), run(42, SchedKind::Heap));
    }

    #[test]
    fn time_advances_with_costs() {
        let mut sim = mk();
        sim.start();
        sim.run_to_quiescence(u64::MAX);
        // 10 one-way messages, each at least one hop.
        assert!(sim.now() >= 10 * sim.cost_model().hop_latency_ns);
    }

    #[test]
    fn run_until_stops_at_bound() {
        let mut sim = mk();
        sim.start();
        sim.run_until(5_000);
        assert!(sim.now() <= 5_001);
        // And picks up where it left off.
        sim.run_to_quiescence(u64::MAX);
        assert_eq!(sim.actor(Addr::client(DcId(0), 0)).pongs, 5);
    }

    #[test]
    fn single_worker_serializes_service() {
        // Two clients hammer one single-worker server; the server must take
        // at least 20 × rx_cost of virtual time to serve 20 requests.
        let cost = CostModel::functional();
        let rx = Ping(0).rx_cost(&cost);
        let mut sim: Sim<Echo> = Sim::new(cost, 3);
        let server = Addr::server(DcId(0), contrarian_types::PartitionId(0));
        sim.add_server(
            server,
            Echo {
                pongs: 0,
                peer: None,
            },
            1,
        );
        for i in 0..2 {
            sim.add_client(
                Addr::client(DcId(0), i),
                Echo {
                    pongs: 0,
                    peer: Some(server),
                },
            );
        }
        sim.start();
        sim.run_to_quiescence(u64::MAX);
        let total: u64 = (0..2)
            .map(|i| sim.actor(Addr::client(DcId(0), i)).pongs)
            .sum();
        assert_eq!(total, 10);
        assert!(sim.now() >= 20 * rx);
    }

    #[test]
    fn fifo_per_link_is_preserved() {
        // Messages sent in order on one link arrive in order even with
        // zero-latency config (FIFO clamp).
        struct Burst {
            got: Vec<u32>,
        }
        impl Actor for Burst {
            type Msg = Ping;
            fn on_start(&mut self, ctx: &mut dyn ActorCtx<Ping>) {
                if !ctx.self_addr().is_server() {
                    for i in 0..5 {
                        ctx.send(
                            Addr::server(DcId(0), contrarian_types::PartitionId(0)),
                            Ping(i),
                        );
                    }
                }
            }
            fn on_message(&mut self, _ctx: &mut dyn ActorCtx<Ping>, _from: Addr, msg: Ping) {
                self.got.push(msg.0);
            }
            fn on_timer(&mut self, _ctx: &mut dyn ActorCtx<Ping>, _kind: TimerKind) {}
            fn inject(_op: Op) -> Ping {
                Ping(0)
            }
        }
        for sched in [SchedKind::Calendar, SchedKind::Heap] {
            let mut sim: Sim<Burst> = Sim::with_scheduler(CostModel::functional(), 9, sched);
            let server = Addr::server(DcId(0), contrarian_types::PartitionId(0));
            sim.add_server(server, Burst { got: vec![] }, 4);
            sim.add_client(Addr::client(DcId(0), 0), Burst { got: vec![] });
            sim.start();
            sim.run_to_quiescence(u64::MAX);
            assert_eq!(sim.actor(server).got, vec![0, 1, 2, 3, 4], "{sched:?}");
        }
    }

    #[test]
    fn runtime_trait_injects_and_stops() {
        use contrarian_runtime::Runtime;
        let mut sim = mk();
        sim.start();
        let client = Addr::client(DcId(0), 0);
        Runtime::send(&mut sim, client, client, Ping(100));
        sim.run_to_quiescence(u64::MAX);
        // The injected Ping(100) is past the pong limit: counted, no reply.
        assert_eq!(sim.actor(client).pongs, 6);
        Runtime::stop_issuing(&mut sim);
        assert_eq!(Runtime::<Echo>::addrs(&sim).len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown addr")]
    fn out_of_range_partition_does_not_alias_across_dcs() {
        // A flat route table must reject idx >= stride instead of reading
        // into the next DC's row.
        let mut sim = mk();
        sim.start();
        sim.actor(Addr::server(DcId(0), contrarian_types::PartitionId(7)));
    }

    #[test]
    fn backlog_slots_are_reused() {
        // Hammer a single-worker server hard enough to build a backlog and
        // drain it fully; the free list must keep the slab bounded.
        let mut sim: Sim<Echo> = Sim::new(CostModel::functional(), 5);
        let server = Addr::server(DcId(0), contrarian_types::PartitionId(0));
        sim.add_server(
            server,
            Echo {
                pongs: 0,
                peer: None,
            },
            1,
        );
        for i in 0..8 {
            sim.add_client(
                Addr::client(DcId(0), i),
                Echo {
                    pongs: 0,
                    peer: Some(server),
                },
            );
        }
        sim.start();
        sim.run_to_quiescence(u64::MAX);
        let total: u64 = (0..8)
            .map(|i| sim.actor(Addr::client(DcId(0), i)).pongs)
            .sum();
        assert_eq!(total, 40);
        assert_eq!(
            sim.backlog.iter().filter(|m| m.is_some()).count(),
            0,
            "backlog fully drained"
        );
        assert_eq!(sim.backlog.len(), sim.backlog_free.len());
    }
}
