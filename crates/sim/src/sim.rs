//! The discrete-event simulation engine.
//!
//! Rebuilt twice: first for 100+-partition sweeps (interned `Addr → index`
//! routing, per-link FIFO tables, inline per-node backlog queues, reusable
//! handler scratch buffers, the calendar-queue scheduler of
//! [`crate::sched`]), then as a *sharded* engine: one event loop per DC
//! group ([`crate::shard`]), synchronized in conservative cross-DC
//! windows. Event ordering is the source-attributed `(time, key)` total
//! order described in the shard module — identical under the heap
//! baseline, the single calendar loop, and any shard count, which the
//! three-way golden determinism tests pin down.
//!
//! [`Sim`] itself is the cluster facade: registration, routing geometry,
//! the window/lockstep drivers, and the merged views of per-shard metrics
//! and history.

use crate::sched::SchedKind;
use crate::shard::{EvKind, NodeSlot, Routing, Shard};
use contrarian_runtime::actor::Actor;
use contrarian_runtime::cost::{CostModel, LookaheadMatrix};
use contrarian_runtime::history::merge_shard_histories;
use contrarian_runtime::metrics::Metrics;
use contrarian_runtime::node_loop::node_seed;
use contrarian_runtime::trace::merge_traces;
use contrarian_runtime::Runtime;
use contrarian_types::{Addr, HistoryEvent, NodeKind, Op, TraceEvent};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// How the sharded engine derives its conservative per-link lower bounds.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Lookahead {
    /// One global window of width [`CostModel::cross_dc_lookahead`] — the
    /// uniform-matrix special case. Sound only at DC granularity (a
    /// same-DC cross-shard message can arrive after just a hop), so shard
    /// groups are forced to 1.
    Scalar,
    /// Per-link minimum-latency matrix derived from the cost model at
    /// start ([`CostModel::lookahead_matrix`]). The default: pairwise
    /// bounds let fast intra-DC links between sub-DC groups coexist with
    /// slow transcontinental edges instead of collapsing every window to
    /// the global minimum latency.
    #[default]
    Matrix,
    /// An explicit matrix (tests, what-if topologies). Its dimension must
    /// equal the shard count at [`Sim::start`]; it is metric-closed there.
    /// Entries must genuinely lower-bound the cost model's link latencies,
    /// or the window-invariant assertion fires at the first violation.
    Fixed(LookaheadMatrix),
}

/// The deterministic cluster simulator. Generic over the protocol's
/// [`Actor`] type; one `Sim` runs one protocol on one cluster.
pub struct Sim<A: Actor> {
    now: u64,
    cost: CostModel,
    seed: u64,
    sched: SchedKind,
    /// Worker threads for parallel windows; 0 = resolve at start
    /// (`CONTRARIAN_SHARD_THREADS`, else available parallelism).
    threads: usize,
    /// Sub-DC shard groups per DC; 0 = resolve at start
    /// (`CONTRARIAN_SHARD_GROUPS`, default 1).
    groups: u16,
    /// Lookahead mode; resolved into `la` at start.
    lookahead: Lookahead,
    /// Per-link conservative bounds, metric-closed; built at start.
    la: LookaheadMatrix,
    /// Cached `la.min_off_diagonal()`: 0 ⇒ no usable window, lockstep.
    min_la: u64,
    /// Conservative window rounds driven so far (scheduling telemetry;
    /// engine-comparison tests pin schedules with it).
    rounds: u64,
    /// Pre-start registrations, in order; drained into shards at start.
    staging: Vec<(Addr, A, u32)>,
    /// Registration-time index (`Addr → global id`); hot-path routing uses
    /// `routing` once started.
    index: HashMap<Addr, usize>,
    routing: Routing,
    shards: Vec<Shard<A>>,
    /// Merged view of the per-shard metrics; `enabled` lives here and is
    /// pushed down to the shards when a run begins.
    master: Metrics,
    metrics_dirty: bool,
    recording: bool,
    tracing: bool,
    stopped: bool,
    started: bool,
}

impl<A: Actor> Sim<A> {
    /// A simulator with the engine selected by `CONTRARIAN_SCHED`
    /// (single calendar-queue loop unless overridden).
    pub fn new(cost: CostModel, seed: u64) -> Self {
        Self::with_scheduler(cost, seed, SchedKind::from_env())
    }

    /// A simulator with an explicit engine choice.
    pub fn with_scheduler(cost: CostModel, seed: u64, sched: SchedKind) -> Self {
        Sim {
            now: 0,
            cost,
            seed,
            sched,
            threads: 0,
            groups: 0,
            lookahead: Lookahead::default(),
            la: LookaheadMatrix::uniform(0, 0),
            min_la: 0,
            rounds: 0,
            staging: Vec::new(),
            index: HashMap::new(),
            routing: Routing::empty(),
            shards: Vec::new(),
            master: Metrics::new(),
            metrics_dirty: false,
            recording: false,
            tracing: false,
            stopped: false,
            started: false,
        }
    }

    /// Registers a server node with `workers` worker threads.
    pub fn add_server(&mut self, addr: Addr, actor: A, workers: u32) {
        assert!(addr.is_server());
        assert!(workers > 0);
        self.register(addr, actor, workers);
    }

    /// Registers a client node (infinitely parallel).
    pub fn add_client(&mut self, addr: Addr, actor: A) {
        assert_eq!(addr.kind, NodeKind::Client);
        self.register(addr, actor, 0);
    }

    fn register(&mut self, addr: Addr, actor: A, workers: u32) {
        assert!(!self.started, "cannot add nodes after start");
        assert!(!self.index.contains_key(&addr), "duplicate node {addr}");
        self.index.insert(addr, self.staging.len());
        self.staging.push((addr, actor, workers));
    }

    /// Overrides the parallel-window thread count (tests; normally derived
    /// from `CONTRARIAN_SHARD_THREADS` or the machine's parallelism at
    /// [`Sim::start`]). Capped at the shard count.
    pub fn set_shard_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        if self.started {
            self.threads = self.threads.min(self.shards.len());
        }
    }

    /// Overrides the sub-DC shard-group count (normally
    /// `CONTRARIAN_SHARD_GROUPS`, default 1). Only meaningful for
    /// [`SchedKind::Sharded`]; forced to 1 under [`Lookahead::Scalar`].
    /// Group count never changes results, only available parallelism.
    pub fn set_shard_groups(&mut self, groups: u16) {
        assert!(!self.started, "shard groups are fixed at start");
        assert!(groups > 0, "shard groups must be positive");
        self.groups = groups;
    }

    /// Selects how the conservative per-link bounds are derived (default:
    /// [`Lookahead::Matrix`]).
    pub fn set_lookahead(&mut self, lookahead: Lookahead) {
        assert!(!self.started, "lookahead mode is fixed at start");
        self.lookahead = lookahead;
    }

    /// The resolved (metric-closed) lookahead matrix driving the windows.
    pub fn lookahead_matrix(&self) -> &LookaheadMatrix {
        assert!(self.started, "the matrix is resolved at start");
        &self.la
    }

    /// Conservative window rounds driven so far (0 on the single-shard and
    /// lockstep paths). Identical matrices and event streams produce
    /// identical round counts — the window schedule is a pure function of
    /// both — which is what lets tests pin "uniform matrix ≡ scalar".
    pub fn window_rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of shards (1 unless running [`SchedKind::Sharded`]).
    pub fn n_shards(&self) -> usize {
        if self.started {
            self.shards.len()
        } else {
            1
        }
    }

    /// Total events the engine has processed (all shards).
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Distributes the registered nodes over shards, builds the routing
    /// geometry, then calls every node's `on_start` (in registration
    /// order).
    pub fn start(&mut self) {
        assert!(!self.started);
        self.started = true;
        let n_dcs = self
            .staging
            .iter()
            .map(|(a, _, _)| a.dc.index() + 1)
            .max()
            .unwrap_or(1);
        let dc_shards = match self.sched {
            SchedKind::Sharded { shards: 0 } => n_dcs,
            SchedKind::Sharded { shards } => shards as usize,
            _ => 1,
        }
        .max(1);
        let groups = self.resolve_groups();
        let n_shards = dc_shards * groups;
        if self.threads == 0 {
            self.threads =
                match contrarian_runtime::env::var(contrarian_runtime::env::SHARD_THREADS) {
                    Some(v) => v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                        panic!("CONTRARIAN_SHARD_THREADS must be a positive integer, got `{v}`")
                    }),
                    // lint:allow(determinism): worker-count default only; thread count changes wall-clock speed, never the produced history
                    None => std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                };
        }
        self.threads = self.threads.min(n_shards);

        self.shards = (0..n_shards)
            .map(|i| {
                let mut s = Shard::new(i, self.sched.queue_kind(), self.cost.clone());
                s.recording = self.recording;
                s.tracing = self.tracing;
                s.stopped = self.stopped;
                s.metrics.enabled = self.master.enabled;
                s
            })
            .collect();
        // Per-(DC, kind) index spans, so partition-range groups split each
        // DC's servers and clients into `groups` contiguous idx ranges.
        let mut server_span = vec![0u32; n_dcs];
        let mut client_span = vec![0u32; n_dcs];
        for (a, _, _) in &self.staging {
            let span = match a.kind {
                NodeKind::Server => &mut server_span[a.dc.index()],
                NodeKind::Client => &mut client_span[a.dc.index()],
            };
            *span = (*span).max(a.idx as u32 + 1);
        }
        let mut addrs = Vec::with_capacity(self.staging.len());
        let mut locate = Vec::with_capacity(self.staging.len());
        let mut shard_dcs: Vec<Vec<u8>> = vec![Vec::new(); n_shards];
        for (gid, (addr, actor, workers)) in self.staging.drain(..).enumerate() {
            let shard = shard_of(addr, dc_shards, groups, &server_span, &client_span);
            let dc = addr.dc.index() as u8;
            if !shard_dcs[shard].contains(&dc) {
                shard_dcs[shard].push(dc);
            }
            let local = self.shards[shard].nodes.len();
            addrs.push(addr);
            locate.push((shard as u32, local as u32));
            let rng = SmallRng::seed_from_u64(node_seed(self.seed, addr));
            self.shards[shard]
                .nodes
                .push(NodeSlot::new(addr, gid as u32, actor, workers, rng));
            self.shards[shard].links.push(Vec::new());
        }
        self.la = match &self.lookahead {
            Lookahead::Scalar => LookaheadMatrix::uniform(n_shards, self.cost.cross_dc_lookahead()),
            Lookahead::Matrix => self.cost.lookahead_matrix(&shard_dcs),
            Lookahead::Fixed(m) => {
                assert_eq!(
                    m.n(),
                    n_shards,
                    "fixed lookahead matrix dimension must equal the shard count"
                );
                let mut m = m.clone();
                m.close();
                m
            }
        };
        self.min_la = self.la.min_off_diagonal();
        self.routing = Routing::build(addrs, locate, &self.cost);
        for gid in 0..self.routing.n_nodes() {
            let (s, l) = self.routing.locate(gid);
            self.shards[s].start_node(&self.routing, l);
        }
        // Bring-up happens before any pop, so cross-shard `on_start` sends
        // merge into the target queues ahead of execution regardless of
        // their arrival time — no window invariant applies yet.
        self.exchange(None);
    }

    /// Resolves the shard-group count: 1 for non-sharded engines and the
    /// scalar lookahead (whose global window is only sound DC-granular),
    /// else the explicit override, else `CONTRARIAN_SHARD_GROUPS`.
    fn resolve_groups(&self) -> usize {
        if !matches!(self.sched, SchedKind::Sharded { .. })
            || matches!(self.lookahead, Lookahead::Scalar)
        {
            return 1;
        }
        if self.groups > 0 {
            return self.groups as usize;
        }
        match contrarian_runtime::env::var(contrarian_runtime::env::SHARD_GROUPS) {
            Some(v) => v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                panic!("CONTRARIAN_SHARD_GROUPS must be a positive integer, got `{v}`")
            }),
            None => 1,
        }
    }

    pub fn now(&self) -> u64 {
        self.now
    }

    /// Merged view of the per-shard metrics. Mutations other than the
    /// `enabled` flag are not propagated back to the shards (the flag is,
    /// at the start of every run call).
    pub fn metrics(&mut self) -> &Metrics {
        self.refresh_metrics();
        &self.master
    }

    pub fn metrics_mut(&mut self) -> &mut Metrics {
        self.refresh_metrics();
        &mut self.master
    }

    fn refresh_metrics(&mut self) {
        if !self.metrics_dirty {
            return;
        }
        let mut m = Metrics::new();
        m.enabled = self.master.enabled;
        for s in &self.shards {
            m.absorb(&s.metrics);
        }
        self.master = m;
        self.metrics_dirty = false;
    }

    /// Pushes the externally toggled flags down to the shards.
    fn sync_flags(&mut self) {
        let enabled = self.master.enabled;
        for s in &mut self.shards {
            s.metrics.enabled = enabled;
            s.recording = self.recording;
            s.tracing = self.tracing;
            s.stopped = self.stopped;
        }
    }

    /// Snapshot of the history recorded so far, in canonical order (see
    /// `contrarian_runtime::history`). Clones; use [`Sim::take_history`] or
    /// [`Sim::drain_history`] to consume.
    pub fn history(&self) -> Vec<HistoryEvent> {
        merge_shard_histories(self.shards.iter().map(|s| s.history.clone()))
    }

    /// Takes the whole recorded history, merged into canonical order.
    pub fn take_history(&mut self) -> Vec<HistoryEvent> {
        self.drain_history()
    }

    /// Drains the events recorded since the last drain, merged into
    /// canonical order. Called between run calls (`run_until` /
    /// `run_to_quiescence` boundaries) the concatenation of drains is
    /// exactly the canonical full history — each drain's events all
    /// precede the next's — which is what lets long recorded runs stream
    /// into a checker instead of buffering the full event `Vec`.
    pub fn drain_history(&mut self) -> Vec<HistoryEvent> {
        merge_shard_histories(
            self.shards
                .iter_mut()
                .map(|s| std::mem::take(&mut s.history)),
        )
    }

    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
        for s in &mut self.shards {
            s.recording = on;
        }
    }

    /// Enables the deterministic tracer (see `contrarian_runtime::trace`).
    /// Off by default: disabled runs pay one branch per potential event.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        for s in &mut self.shards {
            s.tracing = on;
        }
    }

    /// Drains the trace events buffered since the last drain, merged into
    /// the canonical `(t, node, seq)` order — identical across engines and
    /// shard counts, the same property the history merge has.
    pub fn drain_trace(&mut self) -> Vec<TraceEvent> {
        merge_traces(
            self.shards
                .iter_mut()
                .flat_map(|s| s.drain_trace())
                .collect(),
        )
    }

    /// Tells closed-loop clients to stop issuing new operations.
    pub fn set_stopped(&mut self, stopped: bool) {
        self.stopped = stopped;
        for s in &mut self.shards {
            s.stopped = stopped;
        }
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Resolves an address to its (shard, local slot) once started.
    #[inline]
    fn locate(&self, addr: Addr) -> (usize, usize) {
        if self.started {
            self.routing.locate(self.routing.global(addr))
        } else {
            let gid = *self
                .index
                .get(&addr)
                .unwrap_or_else(|| panic!("unknown addr {addr}"));
            (usize::MAX, gid)
        }
    }

    /// Read access to a node's actor (post-run inspection: convergence
    /// checks, protocol statistics).
    pub fn actor(&self, addr: Addr) -> &A {
        let (s, i) = self.locate(addr);
        if s == usize::MAX {
            &self.staging[i].1
        } else {
            &self.shards[s].nodes[i].actor
        }
    }

    pub fn actor_mut(&mut self, addr: Addr) -> &mut A {
        let (s, i) = self.locate(addr);
        if s == usize::MAX {
            &mut self.staging[i].1
        } else {
            &mut self.shards[s].nodes[i].actor
        }
    }

    /// All registered addresses, in registration order.
    pub fn addrs(&self) -> Vec<Addr> {
        if self.started {
            self.routing.addrs.clone()
        } else {
            self.staging.iter().map(|(a, _, _)| *a).collect()
        }
    }

    /// Injects an external operation into a client node (interactive use).
    pub fn inject_op(&mut self, client: Addr, op: Op) {
        let msg = A::inject(op);
        self.external_send(client, client, msg);
    }

    fn external_send(&mut self, from: Addr, to: Addr, msg: A::Msg) {
        assert!(
            self.started,
            "external sends require a started Sim (call start() first)"
        );
        let (s, l) = self.routing.locate(self.routing.global(to));
        let shard = &mut self.shards[s];
        let key = shard.alloc_key(l);
        shard
            .queue
            .push(self.now, key, EvKind::Arrive { to: l, from, msg });
    }

    /// Processes a single event — the globally minimal `(t, key)` across
    /// all shards. Returns `false` when no events remain.
    pub fn step(&mut self) -> bool {
        assert!(self.started, "Sim::start must be called before stepping");
        self.sync_flags();
        self.lockstep_step()
    }

    /// `(t, key)`-minimal single step across shards, exchanging cross-shard
    /// messages immediately. This is plain sequential simulation and the
    /// fallback whenever windows cannot be formed (zero lookahead).
    fn lockstep_step(&mut self) -> bool {
        let mut best: Option<(u64, u64, usize)> = None;
        for (i, s) in self.shards.iter_mut().enumerate() {
            if let Some((t, k)) = s.queue.peek_key() {
                if best.is_none_or(|(bt, bk, _)| (t, k) < (bt, bk)) {
                    best = Some((t, k, i));
                }
            }
        }
        let Some((t, _, i)) = best else {
            return false;
        };
        let routing = &self.routing;
        self.shards[i].step_one(routing);
        if !self.shards[i].outbox.is_empty() {
            self.exchange(None);
        }
        self.now = self.now.max(t);
        self.metrics_dirty = true;
        true
    }

    /// Earliest pending event time across all shards.
    fn min_next_t(&mut self) -> Option<u64> {
        self.shards
            .iter_mut()
            .filter_map(|s| s.queue.peek_t())
            .min()
    }

    /// Delivers every parked cross-shard message into its target queue.
    /// With `ends` (the per-shard window bounds of a conservative round),
    /// asserts the window invariant: nothing sent during a round may land
    /// inside its *destination's* just-run window.
    fn exchange(&mut self, ends: Option<&[u64]>) {
        for i in 0..self.shards.len() {
            if self.shards[i].outbox.is_empty() {
                continue;
            }
            let mut outbox = std::mem::take(&mut self.shards[i].outbox);
            for m in outbox.drain(..) {
                assert!(
                    ends.is_none_or(|e| m.t >= e[m.shard]),
                    "conservative window violated: cross-shard message for t={} \
                     inside destination shard {}'s window ending at {}",
                    m.t,
                    m.shard,
                    ends.map_or(0, |e| e[m.shard])
                );
                self.shards[m.shard].queue.push(
                    m.t,
                    m.key,
                    EvKind::Arrive {
                        to: m.to_local,
                        from: m.from,
                        msg: m.msg,
                    },
                );
            }
            // Hand the allocation back for the next window.
            self.shards[i].outbox = outbox;
        }
    }

    /// Processes every event with `t ≤ bound`.
    fn run_bounded(&mut self, bound: u64)
    where
        A: Send,
    {
        assert!(self.started, "Sim::start must be called before running");
        self.sync_flags();
        if self.shards.len() == 1 {
            // Single event loop: the classic engine, no barriers at all.
            let routing = &self.routing;
            let s = &mut self.shards[0];
            while let Some(t) = s.queue.peek_t() {
                if t > bound {
                    break;
                }
                s.step_one(routing);
            }
            self.now = self.now.max(s.now);
        } else if self.min_la == 0 {
            // Some pair of populated shards has a zero bound (free links
            // between them): no conservative window exists; run the shards
            // in lockstep (sequential, still bit-identical).
            while let Some(m) = self.min_next_t() {
                if m > bound {
                    break;
                }
                self.lockstep_step();
            }
        } else {
            self.run_windows(bound);
        }
        self.metrics_dirty = true;
    }

    /// The conservative-window driver. Each round computes every shard's
    /// *horizon* — the earliest instant any pending work could still get a
    /// message to it: `min over i≠j` of the incoming chain `next_t[i] +
    /// L(i, j)` and the bounce-back `next_t[j] + L(j, i) + L(i, j)` (see
    /// [`LookaheadMatrix::horizon`]) — and runs each shard up to its own
    /// (bound-clamped) horizon, in parallel when more than one shard has
    /// work and more than one thread is available. Cross-shard messages are exchanged at
    /// the barrier; the next round recomputes horizons from the advanced
    /// clocks. Pairwise bounds mean two sub-DC groups of the same DC
    /// window against the intra-DC hop while racing a transcontinental
    /// peer by up to the inter-DC latency — a scalar lookahead would gate
    /// every pair on the single smallest edge in the whole topology.
    ///
    /// Progress: the shard holding the global minimum `m` has horizon
    /// ≥ `m + min_off_diagonal` > `m`, so it always clears at least its
    /// minimal event — except when horizons saturate near `u64::MAX`,
    /// where one lockstep event is driven instead so the loop can never
    /// spin without progress (the degenerate-window regression).
    fn run_windows(&mut self, bound: u64)
    where
        A: Send,
    {
        let threads = self.threads;
        let n = self.shards.len();
        let mut next_t = vec![u64::MAX; n];
        let mut ends = vec![0u64; n];
        loop {
            let mut m = u64::MAX;
            let mut any = false;
            for (i, s) in self.shards.iter_mut().enumerate() {
                next_t[i] = match s.queue.peek_t() {
                    Some(t) => {
                        any = true;
                        m = m.min(t);
                        t
                    }
                    None => u64::MAX,
                };
            }
            if !any || m > bound {
                break;
            }
            let mut active = 0usize;
            for (i, end) in ends.iter_mut().enumerate() {
                *end = window_end(self.la.horizon(i, &next_t), bound);
                if next_t[i] < *end {
                    active += 1;
                }
            }
            if active == 0 {
                // Every window clamped empty: only possible with horizons
                // and events saturated at u64::MAX. Lockstep one event so
                // the driver still terminates.
                self.lockstep_step();
                continue;
            }
            self.rounds += 1;
            let routing = &self.routing;
            if threads <= 1 || active <= 1 {
                for (s, &end) in self.shards.iter_mut().zip(&ends) {
                    s.run_window(routing, end);
                }
            } else {
                let ends = &ends;
                std::thread::scope(|scope| {
                    for (i, s) in self.shards.iter_mut().enumerate() {
                        scope.spawn(move || s.run_window(routing, ends[i]));
                    }
                });
            }
            self.exchange(Some(&ends));
        }
        self.now = self
            .now
            .max(self.shards.iter().map(|s| s.now).max().unwrap_or(0));
    }

    /// Runs until virtual time `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: u64)
    where
        A: Send,
    {
        self.run_bounded(t);
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs until the event queue drains or `max_t` is hit (whichever is
    /// first). Useful to quiesce a cluster whose periodic timers have been
    /// stopped.
    pub fn run_to_quiescence(&mut self, max_t: u64)
    where
        A: Send,
    {
        self.run_bounded(max_t);
        // The historical loop (`while now <= max_t && step()`) also ran the
        // *first* event past the bound; keep that observable behaviour.
        if self.now <= max_t {
            self.lockstep_step();
        }
    }
}

/// Shard assignment: DC → shard column (round-robin over `dc_shards`, as
/// before), then the node's index splits into `groups` contiguous ranges
/// of its DC's server/client span — partition-range groups, so co-accessed
/// neighbouring partitions tend to share a shard. Pure arithmetic on
/// registration-time data: shard placement is a function of the address
/// alone, never of machine parallelism, so it cannot perturb determinism.
fn shard_of(
    addr: contrarian_types::Addr,
    dc_shards: usize,
    groups: usize,
    server_span: &[u32],
    client_span: &[u32],
) -> usize {
    let dc = addr.dc.index();
    let col = dc % dc_shards;
    if groups == 1 {
        return col;
    }
    let span = match addr.kind {
        NodeKind::Server => server_span[dc],
        NodeKind::Client => client_span[dc],
    }
    .max(1) as u64;
    // idx < span by construction, so g < groups; min() guards hypothetical
    // sparse registrations anyway.
    let g = (addr.idx as u64 * groups as u64 / span) as usize;
    col * groups + g.min(groups - 1)
}

/// Clamps a shard's conservative horizon to the run bound — the one
/// audited place window ends are formed. The window is half-open
/// `[next_t, end)` while the bound is *inclusive* (`run_bounded` must
/// process events at exactly `bound`), hence the `+ 1` — saturating,
/// because `bound == u64::MAX` means "unbounded" and must not wrap into a
/// permanently empty window (the old `(bound + 1).min(..)` /
/// `saturating_add` pairing could spin a degenerate `[u64::MAX, u64::MAX)`
/// window forever once the clamp engaged). The residual saturated case —
/// horizon *and* bound both at `u64::MAX` with every pending event there
/// too — is handled by the driver's lockstep fallback, not here.
#[inline]
fn window_end(horizon: u64, bound: u64) -> u64 {
    horizon.min(bound.saturating_add(1))
}

impl<A: Actor> Runtime<A> for Sim<A> {
    fn now(&self) -> u64 {
        self.now
    }

    fn send(&mut self, from: Addr, to: Addr, msg: A::Msg) {
        self.external_send(from, to, msg);
    }

    fn stop_issuing(&mut self) {
        self.set_stopped(true);
    }

    fn addrs(&self) -> Vec<Addr> {
        Sim::addrs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contrarian_runtime::actor::{ActorCtx, TimerKind};
    use contrarian_runtime::cost::{MsgClass, SimMessage};
    use contrarian_types::DcId;

    /// A ping-pong actor: servers echo, the client counts echoes.
    struct Echo {
        pongs: u64,
        peer: Option<Addr>,
    }

    #[derive(Clone)]
    struct Ping(u32);

    impl SimMessage for Ping {
        fn wire_size(&self) -> usize {
            32
        }
        fn class(&self) -> MsgClass {
            MsgClass::Data
        }
    }

    impl Actor for Echo {
        type Msg = Ping;

        fn on_start(&mut self, ctx: &mut dyn ActorCtx<Ping>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, Ping(0));
            }
        }

        fn on_message(&mut self, ctx: &mut dyn ActorCtx<Ping>, from: Addr, msg: Ping) {
            if ctx.self_addr().is_server() {
                ctx.send(from, Ping(msg.0 + 1));
            } else {
                self.pongs += 1;
                if msg.0 < 9 {
                    ctx.send(from, Ping(msg.0 + 1));
                }
            }
        }

        fn on_timer(&mut self, _ctx: &mut dyn ActorCtx<Ping>, _kind: TimerKind) {}

        fn inject(_op: Op) -> Ping {
            Ping(0)
        }
    }

    fn mk_with(sched: SchedKind) -> Sim<Echo> {
        let mut sim = Sim::with_scheduler(CostModel::functional(), 1, sched);
        let server = Addr::server(DcId(0), contrarian_types::PartitionId(0));
        let client = Addr::client(DcId(0), 0);
        sim.add_server(
            server,
            Echo {
                pongs: 0,
                peer: None,
            },
            1,
        );
        sim.add_client(
            client,
            Echo {
                pongs: 0,
                peer: Some(server),
            },
        );
        sim
    }

    fn mk() -> Sim<Echo> {
        mk_with(SchedKind::Calendar)
    }

    const ALL_ENGINES: [SchedKind; 3] = [
        SchedKind::Calendar,
        SchedKind::Heap,
        SchedKind::Sharded { shards: 0 },
    ];

    #[test]
    fn ping_pong_runs_to_completion() {
        for sched in ALL_ENGINES {
            let mut sim = mk_with(sched);
            sim.start();
            sim.run_to_quiescence(u64::MAX);
            let client = Addr::client(DcId(0), 0);
            assert_eq!(
                sim.actor(client).pongs,
                5,
                "pings 0,2,4,6,8 produce 5 pongs ({sched:?})"
            );
        }
    }

    #[test]
    fn identical_seeds_are_deterministic_across_engines() {
        let run = |seed, sched| {
            let mut sim = Sim::with_scheduler(CostModel::calibrated(), seed, sched);
            let server = Addr::server(DcId(0), contrarian_types::PartitionId(0));
            let client = Addr::client(DcId(0), 0);
            sim.add_server(
                server,
                Echo {
                    pongs: 0,
                    peer: None,
                },
                2,
            );
            sim.add_client(
                client,
                Echo {
                    pongs: 0,
                    peer: Some(server),
                },
            );
            sim.start();
            sim.run_to_quiescence(u64::MAX);
            sim.now()
        };
        assert_eq!(run(42, SchedKind::Calendar), run(42, SchedKind::Calendar));
        for sched in ALL_ENGINES {
            assert_eq!(run(42, SchedKind::Calendar), run(42, sched), "{sched:?}");
        }
    }

    #[test]
    fn traces_merge_identically_across_engines() {
        // The engine-level MsgSend/MsgDeliver events alone must form the
        // same canonical stream under every scheduler — same `(t, node,
        // seq)` keys, same payloads.
        let run = |sched| {
            let mut sim = mk_with(sched);
            sim.set_tracing(true);
            sim.start();
            sim.run_to_quiescence(u64::MAX);
            sim.drain_trace()
        };
        let want = run(SchedKind::Calendar);
        assert!(!want.is_empty(), "ping-pong produces send/deliver events");
        assert!(
            want.windows(2).all(|w| w[0].key() < w[1].key()),
            "canonical order"
        );
        for sched in [SchedKind::Heap, SchedKind::Sharded { shards: 0 }] {
            assert_eq!(run(sched), want, "{sched:?}");
        }
    }

    #[test]
    fn tracing_off_buffers_nothing() {
        let mut sim = mk();
        sim.start();
        sim.run_to_quiescence(u64::MAX);
        assert!(sim.drain_trace().is_empty());
    }

    #[test]
    fn time_advances_with_costs() {
        let mut sim = mk();
        sim.start();
        sim.run_to_quiescence(u64::MAX);
        // 10 one-way messages, each at least one hop.
        assert!(sim.now() >= 10 * sim.cost_model().hop_latency_ns);
    }

    #[test]
    fn run_until_stops_at_bound() {
        let mut sim = mk();
        sim.start();
        sim.run_until(5_000);
        assert!(sim.now() <= 5_001);
        // And picks up where it left off.
        sim.run_to_quiescence(u64::MAX);
        assert_eq!(sim.actor(Addr::client(DcId(0), 0)).pongs, 5);
    }

    #[test]
    fn single_worker_serializes_service() {
        // Two clients hammer one single-worker server; the server must take
        // at least 20 × rx_cost of virtual time to serve 20 requests.
        let cost = CostModel::functional();
        let rx = Ping(0).rx_cost(&cost);
        let mut sim: Sim<Echo> = Sim::with_scheduler(cost, 3, SchedKind::Calendar);
        let server = Addr::server(DcId(0), contrarian_types::PartitionId(0));
        sim.add_server(
            server,
            Echo {
                pongs: 0,
                peer: None,
            },
            1,
        );
        for i in 0..2 {
            sim.add_client(
                Addr::client(DcId(0), i),
                Echo {
                    pongs: 0,
                    peer: Some(server),
                },
            );
        }
        sim.start();
        sim.run_to_quiescence(u64::MAX);
        let total: u64 = (0..2)
            .map(|i| sim.actor(Addr::client(DcId(0), i)).pongs)
            .sum();
        assert_eq!(total, 10);
        assert!(sim.now() >= 20 * rx);
    }

    #[test]
    fn fifo_per_link_is_preserved() {
        // Messages sent in order on one link arrive in order even with
        // zero-latency config (FIFO clamp).
        struct Burst {
            got: Vec<u32>,
        }
        impl Actor for Burst {
            type Msg = Ping;
            fn on_start(&mut self, ctx: &mut dyn ActorCtx<Ping>) {
                if !ctx.self_addr().is_server() {
                    for i in 0..5 {
                        ctx.send(
                            Addr::server(DcId(0), contrarian_types::PartitionId(0)),
                            Ping(i),
                        );
                    }
                }
            }
            fn on_message(&mut self, _ctx: &mut dyn ActorCtx<Ping>, _from: Addr, msg: Ping) {
                self.got.push(msg.0);
            }
            fn on_timer(&mut self, _ctx: &mut dyn ActorCtx<Ping>, _kind: TimerKind) {}
            fn inject(_op: Op) -> Ping {
                Ping(0)
            }
        }
        for sched in ALL_ENGINES {
            let mut sim: Sim<Burst> = Sim::with_scheduler(CostModel::functional(), 9, sched);
            let server = Addr::server(DcId(0), contrarian_types::PartitionId(0));
            sim.add_server(server, Burst { got: vec![] }, 4);
            sim.add_client(Addr::client(DcId(0), 0), Burst { got: vec![] });
            sim.start();
            sim.run_to_quiescence(u64::MAX);
            assert_eq!(sim.actor(server).got, vec![0, 1, 2, 3, 4], "{sched:?}");
        }
    }

    #[test]
    fn runtime_trait_injects_and_stops() {
        use contrarian_runtime::Runtime;
        let mut sim = mk();
        sim.start();
        let client = Addr::client(DcId(0), 0);
        Runtime::send(&mut sim, client, client, Ping(100));
        sim.run_to_quiescence(u64::MAX);
        // The injected Ping(100) is past the pong limit: counted, no reply.
        assert_eq!(sim.actor(client).pongs, 6);
        Runtime::stop_issuing(&mut sim);
        assert_eq!(Runtime::<Echo>::addrs(&sim).len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown addr")]
    fn out_of_range_partition_does_not_alias_across_dcs() {
        // A flat route table must reject idx >= stride instead of reading
        // into the next DC's row.
        let mut sim = mk();
        sim.start();
        sim.actor(Addr::server(DcId(0), contrarian_types::PartitionId(7)));
    }

    #[test]
    fn backlog_slots_are_reused() {
        // Hammer a single-worker server hard enough to build a backlog and
        // drain it fully; the free list must keep the slab bounded.
        let mut sim: Sim<Echo> =
            Sim::with_scheduler(CostModel::functional(), 5, SchedKind::Calendar);
        let server = Addr::server(DcId(0), contrarian_types::PartitionId(0));
        sim.add_server(
            server,
            Echo {
                pongs: 0,
                peer: None,
            },
            1,
        );
        for i in 0..8 {
            sim.add_client(
                Addr::client(DcId(0), i),
                Echo {
                    pongs: 0,
                    peer: Some(server),
                },
            );
        }
        sim.start();
        sim.run_to_quiescence(u64::MAX);
        let total: u64 = (0..8)
            .map(|i| sim.actor(Addr::client(DcId(0), i)).pongs)
            .sum();
        assert_eq!(total, 40);
        let shard = &sim.shards[0];
        assert_eq!(
            shard.backlog.iter().filter(|m| m.is_some()).count(),
            0,
            "backlog fully drained"
        );
        assert_eq!(shard.backlog.len(), shard.backlog_free.len());
    }

    // ---- sharded engine: cross-DC clusters and window barriers ----

    /// A two-DC echo mesh: every client round-robins requests over every
    /// server of both DCs, so most traffic crosses the shard boundary.
    fn mk_geo(sched: SchedKind, cost: CostModel, servers: u16, clients: u16) -> Sim<Mesh> {
        let mut sim: Sim<Mesh> = Sim::with_scheduler(cost, 11, sched);
        for dc in 0..2 {
            for p in 0..servers {
                sim.add_server(
                    Addr::server(DcId(dc), contrarian_types::PartitionId(p)),
                    Mesh::new(servers),
                    2,
                );
            }
        }
        for dc in 0..2 {
            for c in 0..clients {
                sim.add_client(Addr::client(DcId(dc), c), Mesh::new(servers));
            }
        }
        sim
    }

    struct Mesh {
        dcs: u8,
        servers: u16,
        next: u32,
        echoes: u64,
        sum: u64,
    }

    impl Mesh {
        fn new(servers: u16) -> Self {
            Self::spanning(2, servers)
        }
        fn spanning(dcs: u8, servers: u16) -> Self {
            Mesh {
                dcs,
                servers,
                next: 0,
                echoes: 0,
                sum: 0,
            }
        }
        fn target(&mut self) -> Addr {
            let t = self.next;
            self.next += 1;
            let all = self.dcs as u32 * self.servers as u32;
            Addr::server(
                DcId((t % all / self.servers as u32) as u8),
                contrarian_types::PartitionId((t % self.servers as u32) as u16),
            )
        }
    }

    impl Actor for Mesh {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut dyn ActorCtx<Ping>) {
            if !ctx.self_addr().is_server() {
                for _ in 0..4 {
                    let to = self.target();
                    ctx.send(to, Ping(0));
                }
            }
        }
        fn on_message(&mut self, ctx: &mut dyn ActorCtx<Ping>, from: Addr, msg: Ping) {
            if ctx.self_addr().is_server() {
                ctx.send(from, Ping(msg.0 + 1));
            } else {
                self.echoes += 1;
                self.sum = self.sum.wrapping_mul(31).wrapping_add(msg.0 as u64);
                if msg.0 < 40 {
                    let to = self.target();
                    ctx.send(to, Ping(msg.0 + 1));
                }
            }
        }
        fn on_timer(&mut self, _ctx: &mut dyn ActorCtx<Ping>, _kind: TimerKind) {}
        fn inject(_op: Op) -> Ping {
            Ping(0)
        }
    }

    /// Digest of the run every engine must agree on: final time, event
    /// count, and the full per-client observation streams.
    fn geo_digest(
        sched: SchedKind,
        cost: CostModel,
        threads: Option<usize>,
    ) -> (u64, u64, Vec<u64>) {
        let mut sim = mk_geo(sched, cost, 3, 4);
        if let Some(t) = threads {
            sim.set_shard_threads(t);
        }
        sim.start();
        sim.run_until(40_000_000);
        sim.run_to_quiescence(u64::MAX);
        let mut sums = Vec::new();
        for dc in 0..2 {
            for c in 0..4 {
                let a = sim.actor(Addr::client(DcId(dc), c));
                sums.push(a.sum.wrapping_mul(1023).wrapping_add(a.echoes));
            }
        }
        (sim.now(), sim.events_processed(), sums)
    }

    #[test]
    fn sharded_geo_run_matches_single_threaded_engines() {
        let want = geo_digest(SchedKind::Calendar, CostModel::calibrated(), None);
        for sched in [
            SchedKind::Heap,
            SchedKind::Sharded { shards: 0 },
            SchedKind::Sharded { shards: 2 },
        ] {
            assert_eq!(
                geo_digest(sched, CostModel::calibrated(), None),
                want,
                "{sched:?} diverged from the calendar engine"
            );
        }
        // Forced multi-threading (the machine may report 1 CPU): the
        // parallel window path itself must replay the same run.
        assert_eq!(
            geo_digest(
                SchedKind::Sharded { shards: 0 },
                CostModel::calibrated(),
                Some(2)
            ),
            want,
            "parallel windows diverged"
        );
    }

    #[test]
    fn zero_cross_dc_latency_degenerates_to_lockstep() {
        // With free cross-DC links no conservative window exists; the
        // sharded engine must fall back to one-event-at-a-time lockstep
        // and still match the single-threaded run exactly.
        let mut cost = CostModel::functional();
        cost.interdc_latency_ns = 0;
        assert_eq!(cost.cross_dc_lookahead(), 0);
        let want = geo_digest(SchedKind::Calendar, cost.clone(), None);
        assert_eq!(
            geo_digest(SchedKind::Sharded { shards: 0 }, cost, None),
            want
        );
    }

    #[test]
    fn surplus_shards_stay_empty_and_harmless() {
        // More shards than DCs: shards 2..6 own no nodes. They must not
        // perturb the run (or deadlock the window barrier).
        let want = geo_digest(SchedKind::Calendar, CostModel::calibrated(), None);
        let mut sim = mk_geo(
            SchedKind::Sharded { shards: 6 },
            CostModel::calibrated(),
            3,
            4,
        );
        sim.start();
        assert_eq!(sim.n_shards(), 6);
        sim.run_until(40_000_000);
        sim.run_to_quiescence(u64::MAX);
        let mut sums = Vec::new();
        for dc in 0..2 {
            for c in 0..4 {
                let a = sim.actor(Addr::client(DcId(dc), c));
                sums.push(a.sum.wrapping_mul(1023).wrapping_add(a.echoes));
            }
        }
        assert_eq!((sim.now(), sim.events_processed(), sums), want);
    }

    #[test]
    fn arrival_exactly_on_the_window_boundary_is_next_window() {
        // Strip every cost except the inter-DC latency L. A cross-DC send
        // fired at t=0 then arrives at exactly L — the exclusive end of
        // the first window [0, L). It must be exchanged into the *next*
        // window and still be delivered, identically to the serial engine.
        struct OneShot {
            delivered: Vec<u64>,
        }
        impl Actor for OneShot {
            type Msg = Ping;
            fn on_start(&mut self, ctx: &mut dyn ActorCtx<Ping>) {
                if !ctx.self_addr().is_server() {
                    ctx.send(
                        Addr::server(DcId(1), contrarian_types::PartitionId(0)),
                        Ping(7),
                    );
                }
            }
            fn on_message(&mut self, ctx: &mut dyn ActorCtx<Ping>, _from: Addr, _msg: Ping) {
                self.delivered.push(ctx.now());
            }
            fn on_timer(&mut self, _ctx: &mut dyn ActorCtx<Ping>, _kind: TimerKind) {}
            fn inject(_op: Op) -> Ping {
                Ping(0)
            }
        }
        const L: u64 = 123_456;
        let zeroed = CostModel {
            rx_ns: 0,
            tx_ns: 0,
            check_rx_ns: 0,
            check_tx_ns: 0,
            client_rx_ns: 0,
            client_tx_ns: 0,
            read_op_ns: 0,
            write_op_ns: 0,
            snap_ns: 0,
            scan_per_version_ns: 0,
            reader_record_ns: 0,
            per_rot_id_ns: 0,
            cpu_per_kb_ns: 0,
            timer_ns: 0,
            hop_latency_ns: 0,
            interdc_latency_ns: L,
            interdc_overrides: Vec::new(),
            wire_ns_per_kb: 0,
        };
        let run = |sched| {
            let mut sim: Sim<OneShot> = Sim::with_scheduler(zeroed.clone(), 2, sched);
            // A server in each DC so both shards have a node; only DC1's
            // server receives anything.
            for dc in 0..2 {
                sim.add_server(
                    Addr::server(DcId(dc), contrarian_types::PartitionId(0)),
                    OneShot { delivered: vec![] },
                    1,
                );
            }
            sim.add_client(Addr::client(DcId(0), 0), OneShot { delivered: vec![] });
            sim.start();
            sim.run_to_quiescence(u64::MAX);
            sim.actor(Addr::server(DcId(1), contrarian_types::PartitionId(0)))
                .delivered
                .clone()
        };
        let serial = run(SchedKind::Calendar);
        assert_eq!(serial, vec![L], "arrival lands exactly at the lookahead");
        assert_eq!(run(SchedKind::Sharded { shards: 0 }), serial);
    }

    #[test]
    fn drained_history_concatenation_equals_take_history() {
        use contrarian_types::{ClientId, Key, VersionId};
        // A recording actor: clients tag a PutDone per echo. Draining at
        // run boundaries then concatenating must equal the one-shot
        // history of an identical run.
        struct Rec {
            inner: Mesh,
        }
        impl Actor for Rec {
            type Msg = Ping;
            fn on_start(&mut self, ctx: &mut dyn ActorCtx<Ping>) {
                self.inner.on_start(ctx);
            }
            fn on_message(&mut self, ctx: &mut dyn ActorCtx<Ping>, from: Addr, msg: Ping) {
                let me = ctx.self_addr();
                if !me.is_server() {
                    ctx.record(HistoryEvent::PutDone {
                        client: ClientId::new(me.dc, me.idx),
                        seq: msg.0,
                        t_start: ctx.now(),
                        t_end: ctx.now(),
                        key: Key(msg.0 as u64),
                        vid: VersionId::new(ctx.now(), me.dc),
                    });
                }
                self.inner.on_message(ctx, from, msg);
            }
            fn on_timer(&mut self, _ctx: &mut dyn ActorCtx<Ping>, _kind: TimerKind) {}
            fn inject(_op: Op) -> Ping {
                Ping(0)
            }
        }
        let build = |sched| {
            let mut sim: Sim<Rec> = Sim::with_scheduler(CostModel::calibrated(), 4, sched);
            for dc in 0..2 {
                sim.add_server(
                    Addr::server(DcId(dc), contrarian_types::PartitionId(0)),
                    Rec {
                        inner: Mesh::new(1),
                    },
                    2,
                );
                sim.add_client(
                    Addr::client(DcId(dc), 0),
                    Rec {
                        inner: Mesh::new(1),
                    },
                );
            }
            sim.set_recording(true);
            sim.start();
            sim
        };
        let mut whole = build(SchedKind::Sharded { shards: 0 });
        whole.run_to_quiescence(u64::MAX);
        let want = whole.take_history();
        assert!(!want.is_empty());

        let mut chunked = build(SchedKind::Sharded { shards: 0 });
        let mut got = Vec::new();
        for slice in [10_000_000u64, 25_000_000, 60_000_000] {
            chunked.run_until(slice);
            got.extend(chunked.drain_history());
        }
        chunked.run_to_quiescence(u64::MAX);
        got.extend(chunked.drain_history());
        assert_eq!(format!("{want:?}"), format!("{got:?}"));
    }

    // ---- per-link matrix, sub-DC groups, window-bound arithmetic ----

    #[test]
    fn window_end_clamps_with_saturating_semantics() {
        // The bound is inclusive, the window end exclusive: +1, saturating.
        assert_eq!(window_end(100, 500), 100, "horizon below the bound wins");
        assert_eq!(window_end(100, 50), 51, "bound+1 caps the window");
        assert_eq!(window_end(100, 99), 100);
        assert_eq!(
            window_end(100, u64::MAX),
            100,
            "unbounded run, real horizon"
        );
        assert_eq!(window_end(u64::MAX, 10), 11);
        // The degenerate clamp the old arithmetic got wrong: both saturated
        // must stay [MAX, MAX) — empty — and be handled by the driver's
        // lockstep fallback, never wrap to a tiny bogus window.
        assert_eq!(window_end(u64::MAX, u64::MAX), u64::MAX);
        assert_eq!(window_end(u64::MAX, u64::MAX - 1), u64::MAX);
        assert_eq!(window_end(0, 0), 0, "empty window at the origin is fine");
    }

    #[test]
    fn timers_at_u64_max_terminate_via_lockstep_fallback() {
        // Regression: events pending exactly at u64::MAX saturate every
        // horizon, so every window clamps empty ([MAX, MAX)); the driver
        // must fall back to lockstep instead of spinning forever.
        struct FarTimer {
            fired: bool,
        }
        impl Actor for FarTimer {
            type Msg = Ping;
            fn on_start(&mut self, ctx: &mut dyn ActorCtx<Ping>) {
                if !ctx.self_addr().is_server() {
                    ctx.set_timer(u64::MAX, TimerKind::new(1));
                }
            }
            fn on_message(&mut self, _ctx: &mut dyn ActorCtx<Ping>, _from: Addr, _msg: Ping) {}
            fn on_timer(&mut self, _ctx: &mut dyn ActorCtx<Ping>, _kind: TimerKind) {
                self.fired = true;
            }
            fn inject(_op: Op) -> Ping {
                Ping(0)
            }
        }
        let mut sim: Sim<FarTimer> =
            Sim::with_scheduler(CostModel::functional(), 7, SchedKind::Sharded { shards: 0 });
        for dc in 0..2 {
            sim.add_server(
                Addr::server(DcId(dc), contrarian_types::PartitionId(0)),
                FarTimer { fired: false },
                1,
            );
            sim.add_client(Addr::client(DcId(dc), 0), FarTimer { fired: false });
        }
        sim.start();
        sim.run_to_quiescence(u64::MAX);
        for dc in 0..2 {
            assert!(
                sim.actor(Addr::client(DcId(dc), 0)).fired,
                "DC{dc}'s far timer must still fire"
            );
        }
        assert_eq!(sim.now(), u64::MAX);
    }

    /// Digest + window-round count for a two-DC mesh under an arbitrary
    /// configuration hook.
    fn geo_digest_with(
        sched: SchedKind,
        cost: CostModel,
        config: impl FnOnce(&mut Sim<Mesh>),
    ) -> (u64, u64, Vec<u64>, u64) {
        let mut sim = mk_geo(sched, cost, 3, 4);
        config(&mut sim);
        sim.start();
        sim.run_until(40_000_000);
        sim.run_to_quiescence(u64::MAX);
        let mut sums = Vec::new();
        for dc in 0..2 {
            for c in 0..4 {
                let a = sim.actor(Addr::client(DcId(dc), c));
                sums.push(a.sum.wrapping_mul(1023).wrapping_add(a.echoes));
            }
        }
        (sim.now(), sim.events_processed(), sums, sim.window_rounds())
    }

    #[test]
    fn uniform_matrix_reproduces_scalar_window_schedule() {
        // On a homogeneous topology the per-link matrix *is* uniform, so
        // the matrix engine must drive the exact same window schedule as
        // the scalar one — pinned by the round count, which is a pure
        // function of (matrix, event stream) — not merely the same result.
        let cost = CostModel::calibrated();
        let scalar = geo_digest_with(SchedKind::Sharded { shards: 0 }, cost.clone(), |sim| {
            sim.set_lookahead(Lookahead::Scalar);
            sim.set_shard_threads(2);
        });
        let matrix = geo_digest_with(SchedKind::Sharded { shards: 0 }, cost.clone(), |sim| {
            sim.set_lookahead(Lookahead::Matrix);
            sim.set_shard_threads(2);
        });
        let fixed = geo_digest_with(SchedKind::Sharded { shards: 0 }, cost.clone(), |sim| {
            sim.set_lookahead(Lookahead::Fixed(LookaheadMatrix::uniform(
                2,
                cost.cross_dc_lookahead(),
            )));
            sim.set_shard_threads(2);
        });
        assert!(scalar.3 > 0, "parallel windows actually ran");
        assert_eq!(matrix, scalar, "matrix (uniform) ≠ scalar schedule");
        assert_eq!(fixed, scalar, "explicit uniform matrix ≠ scalar schedule");
        // And the resolved matrices really are the same object.
        let mut sim = mk_geo(SchedKind::Sharded { shards: 0 }, cost.clone(), 3, 4);
        sim.start();
        assert_eq!(
            *sim.lookahead_matrix(),
            LookaheadMatrix::uniform(2, cost.cross_dc_lookahead())
        );
    }

    #[test]
    fn sub_dc_groups_match_serial_engines() {
        // Splitting each DC into 3 partition-range groups (6 shards, forced
        // parallel windows) must replay the calendar run bit-identically.
        let want = geo_digest(SchedKind::Calendar, CostModel::calibrated(), None);
        for groups in [2u16, 3] {
            let got = geo_digest_with(
                SchedKind::Sharded { shards: 0 },
                CostModel::calibrated(),
                |sim| {
                    sim.set_shard_groups(groups);
                    sim.set_shard_threads(4);
                },
            );
            assert_eq!((got.0, got.1, got.2), want, "groups={groups} diverged");
            assert!(got.3 > 0, "groups={groups} never formed a window");
        }
        // Geometry check: 2 DCs × 3 groups = 6 shards, and the sub-DC
        // pairs window against the intra-DC hop, not the inter-DC latency.
        let mut sim = mk_geo(
            SchedKind::Sharded { shards: 0 },
            CostModel::calibrated(),
            3,
            4,
        );
        sim.set_shard_groups(3);
        sim.start();
        assert_eq!(sim.n_shards(), 6);
        let la = sim.lookahead_matrix();
        let cost = CostModel::calibrated();
        assert_eq!(la.get(0, 1), cost.hop_latency_ns, "same-DC groups: hop");
        assert_eq!(la.get(0, 3), cost.interdc_latency_ns, "cross-DC: inter-DC");
        assert_eq!(la.min_off_diagonal(), cost.hop_latency_ns);
    }

    #[test]
    fn scalar_lookahead_forces_single_group_per_dc() {
        // The scalar global window is only sound at DC granularity: a
        // same-DC cross-group message arrives after just a hop, far inside
        // a window of width interdc. Groups must silently clamp to 1.
        let mut sim = mk_geo(
            SchedKind::Sharded { shards: 0 },
            CostModel::calibrated(),
            3,
            4,
        );
        sim.set_shard_groups(4);
        sim.set_lookahead(Lookahead::Scalar);
        sim.start();
        assert_eq!(sim.n_shards(), 2, "scalar mode stays DC-granular");
    }

    #[test]
    fn asymmetric_overrides_match_serial_engines() {
        // Directional link overrides (A→B slow, B→A fast): the matrix is
        // asymmetric, every engine and group count must still agree.
        let mut cost = CostModel::calibrated();
        cost.interdc_overrides = vec![(0, 1, 40_000_000), (1, 0, 3_000_000)];
        let want = geo_digest(SchedKind::Calendar, cost.clone(), None);
        let heap = geo_digest(SchedKind::Heap, cost.clone(), None);
        assert_eq!(heap, want);
        for groups in [1u16, 2, 3] {
            let got = geo_digest_with(SchedKind::Sharded { shards: 0 }, cost.clone(), |sim| {
                sim.set_shard_groups(groups);
                sim.set_shard_threads(3);
            });
            assert_eq!(
                (got.0, got.1, got.2),
                want,
                "asymmetric matrix, groups={groups}"
            );
        }
    }

    #[test]
    fn triangle_violating_overrides_run_exactly_under_closure() {
        // 3 DCs where the direct 0→2 link (100ms) is slower than relaying
        // via DC1 (5ms + 7ms): the raw per-link matrix violates the
        // triangle inequality and metric closure must cap the 0→2 bound at
        // 12ms for the windows to stay conservative across rounds. The
        // exchange assertion fires on any violation; the digest pins
        // exactness.
        let mut cost = CostModel::calibrated();
        cost.interdc_overrides = vec![
            (0, 2, 100_000_000),
            (2, 0, 100_000_000),
            (0, 1, 5_000_000),
            (1, 0, 5_000_000),
            (1, 2, 7_000_000),
            (2, 1, 7_000_000),
        ];
        let digest = |sched, threads: Option<usize>| {
            let mut sim: Sim<Mesh> = Sim::with_scheduler(cost.clone(), 13, sched);
            for dc in 0..3 {
                for p in 0..2 {
                    sim.add_server(
                        Addr::server(DcId(dc), contrarian_types::PartitionId(p)),
                        Mesh::spanning(3, 2),
                        2,
                    );
                }
                for c in 0..2 {
                    sim.add_client(Addr::client(DcId(dc), c), Mesh::spanning(3, 2));
                }
            }
            if let Some(t) = threads {
                sim.set_shard_threads(t);
            }
            sim.start();
            if sim.n_shards() == 3 {
                let la = sim.lookahead_matrix();
                assert_eq!(la.get(0, 2), 12_000_000, "closure caps the slow link");
                assert_eq!(la.get(0, 1), 5_000_000);
            }
            sim.run_until(60_000_000);
            sim.run_to_quiescence(u64::MAX);
            let mut sums = Vec::new();
            for dc in 0..3 {
                for c in 0..2 {
                    let a = sim.actor(Addr::client(DcId(dc), c));
                    sums.push(a.sum.wrapping_mul(1023).wrapping_add(a.echoes));
                }
            }
            (sim.now(), sim.events_processed(), sums)
        };
        let want = digest(SchedKind::Calendar, None);
        assert_eq!(digest(SchedKind::Heap, None), want);
        assert_eq!(digest(SchedKind::Sharded { shards: 0 }, Some(3)), want);
        assert_eq!(digest(SchedKind::Sharded { shards: 2 }, Some(2)), want);
    }
}
