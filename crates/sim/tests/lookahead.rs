//! Property tests of the per-link lookahead matrix and the conservative
//! per-shard horizons built on it.
//!
//! The engine's soundness argument rests on three layers, each pinned
//! here against random (asymmetric, zero-entry, triangle-violating)
//! matrices:
//!
//! 1. metric closure is a well-behaved lower bound (idempotent, never
//!    raises an entry, satisfies the triangle inequality);
//! 2. no causal chain of messages — starting from *any* shard's earliest
//!    pending event, relayed through any path, including bounce-backs
//!    through the destination's own sends — can arrive before the
//!    destination's horizon;
//! 3. the full engine agrees bit-for-bit with the serial calendar run on
//!    random heterogeneous topologies, group counts, and thread counts.

use contrarian_sim::actor::{Actor, ActorCtx, TimerKind};
use contrarian_sim::cost::{CostModel, LookaheadMatrix, MsgClass, SimMessage};
use contrarian_sim::sched::SchedKind;
use contrarian_sim::sim::Sim;
use contrarian_types::{Addr, DcId, Op, PartitionId};
use proptest::prelude::*;

/// Maps a `(class, raw)` pair to a link latency: mostly moderate values,
/// some tiny, some zero, some saturated — deliberately violating the
/// triangle inequality most of the time.
fn entry(class: u8, raw: u64) -> u64 {
    match class {
        0..=3 => 1 + raw % 100_000,
        4 | 5 => 1 + raw % 100,
        6 => 0,
        _ => u64::MAX,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn closure_is_a_sound_idempotent_lower_bound(
        n in 2usize..6,
        seed_entries in prop::collection::vec(0u64..200_000, 36),
    ) {
        let raw = LookaheadMatrix::from_fn(n, |i, j| seed_entries[i * 6 + j]);
        let mut closed = raw.clone();
        closed.close();
        // Never raises an entry, keeps the diagonal at zero.
        for i in 0..n {
            prop_assert_eq!(closed.get(i, i), 0);
            for j in 0..n {
                prop_assert!(closed.get(i, j) <= raw.get(i, j));
            }
        }
        // Triangle inequality holds after closing…
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    prop_assert!(
                        closed.get(i, j)
                            <= closed.get(i, k).saturating_add(closed.get(k, j)),
                        "triangle violated at ({}, {}, {})", i, k, j
                    );
                }
            }
        }
        // …which is exactly the fixed point: closing again changes nothing.
        let mut twice = closed.clone();
        twice.close();
        prop_assert_eq!(twice, closed);
    }

    /// No causal chain can land inside a horizon. A chain starts at some
    /// shard's earliest pending event and hops along raw (pre-closure)
    /// link entries — each relay processes and resends no earlier than its
    /// arrival — and may start at the destination itself (the bounce-back
    /// case). The horizon computed from the *closed* matrix must
    /// lower-bound every such arrival.
    #[test]
    fn horizons_never_admit_a_chained_message(
        n in 2usize..6,
        cells in prop::collection::vec((0u8..8, 0u64..u64::MAX), 36),
        clock_cells in prop::collection::vec((0u8..5, 0u64..1_000_000), 6),
        path_seed in prop::collection::vec(0usize..6, 2..6),
    ) {
        let raw = LookaheadMatrix::from_fn(n, |i, j| {
            let (class, v) = cells[i * 6 + j];
            entry(class, v)
        });
        // Mostly busy shards, occasionally idle (u64::MAX clock).
        let next_t: Vec<u64> = clock_cells[..n]
            .iter()
            .map(|&(class, v)| if class == 0 { u64::MAX } else { v })
            .collect();
        let mut closed = raw.clone();
        closed.close();

        // Build a path: start anywhere pending, end anywhere, consecutive
        // hops distinct.
        let mut path: Vec<usize> = Vec::with_capacity(path_seed.len());
        for &s in &path_seed {
            let v = s % n;
            if path.last() != Some(&v) {
                path.push(v);
            }
        }
        prop_assume!(path.len() >= 2);
        let start = path[0];
        let dest = *path.last().unwrap();
        prop_assume!(next_t[start] != u64::MAX);

        let mut arrive = next_t[start];
        for hop in path.windows(2) {
            arrive = arrive.saturating_add(raw.get(hop[0], hop[1]));
        }
        let horizon = closed.horizon(dest, &next_t);
        prop_assert!(
            arrive >= horizon,
            "chain {:?} arrives at {} inside shard {}'s horizon {}",
            path, arrive, dest, horizon
        );
    }
}

// ---- engine-level differential on random heterogeneous topologies ----

#[derive(Clone)]
struct Ping(u32);

impl SimMessage for Ping {
    fn wire_size(&self) -> usize {
        48
    }
    fn class(&self) -> MsgClass {
        MsgClass::Data
    }
}

/// Clients round-robin requests over every server of every DC; servers
/// echo. The per-client observation stream digests the full run.
struct Mesh {
    dcs: u8,
    servers: u16,
    next: u32,
    echoes: u64,
    sum: u64,
}

impl Mesh {
    fn new(dcs: u8, servers: u16) -> Self {
        Mesh {
            dcs,
            servers,
            next: 0,
            echoes: 0,
            sum: 0,
        }
    }
    fn target(&mut self) -> Addr {
        let t = self.next;
        self.next += 1;
        let all = self.dcs as u32 * self.servers as u32;
        Addr::server(
            DcId((t % all / self.servers as u32) as u8),
            PartitionId((t % self.servers as u32) as u16),
        )
    }
}

impl Actor for Mesh {
    type Msg = Ping;
    fn on_start(&mut self, ctx: &mut dyn ActorCtx<Ping>) {
        if !ctx.self_addr().is_server() {
            for _ in 0..3 {
                let to = self.target();
                ctx.send(to, Ping(0));
            }
        }
    }
    fn on_message(&mut self, ctx: &mut dyn ActorCtx<Ping>, from: Addr, msg: Ping) {
        if ctx.self_addr().is_server() {
            ctx.send(from, Ping(msg.0 + 1));
        } else {
            self.echoes += 1;
            self.sum = self.sum.wrapping_mul(31).wrapping_add(msg.0 as u64);
            if msg.0 < 20 {
                let to = self.target();
                ctx.send(to, Ping(msg.0 + 1));
            }
        }
    }
    fn on_timer(&mut self, _ctx: &mut dyn ActorCtx<Ping>, _kind: TimerKind) {}
    fn inject(_op: Op) -> Ping {
        Ping(0)
    }
}

#[allow(clippy::too_many_arguments)]
fn digest(
    cost: &CostModel,
    dcs: u8,
    servers: u16,
    clients: u16,
    seed: u64,
    sched: SchedKind,
    groups: Option<u16>,
    threads: usize,
) -> (u64, u64, Vec<u64>) {
    let mut sim: Sim<Mesh> = Sim::with_scheduler(cost.clone(), seed, sched);
    for dc in 0..dcs {
        for p in 0..servers {
            sim.add_server(
                Addr::server(DcId(dc), PartitionId(p)),
                Mesh::new(dcs, servers),
                2,
            );
        }
        for c in 0..clients {
            sim.add_client(Addr::client(DcId(dc), c), Mesh::new(dcs, servers));
        }
    }
    if let Some(g) = groups {
        sim.set_shard_groups(g);
    }
    sim.set_shard_threads(threads);
    sim.start();
    sim.run_until(30_000_000);
    sim.run_to_quiescence(u64::MAX);
    let mut sums = Vec::new();
    for dc in 0..dcs {
        for c in 0..clients {
            let a = sim.actor(Addr::client(DcId(dc), c));
            sums.push(a.sum.wrapping_mul(1023).wrapping_add(a.echoes));
        }
    }
    (sim.now(), sim.events_processed(), sums)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random heterogeneous topology (directional overrides, possibly
    /// zero-latency links), random shard-group and thread counts: the
    /// parallel matrix engine must replay the serial calendar run
    /// bit-identically. Zero-latency links collapse the matrix minimum to
    /// 0 and exercise the lockstep fallback inside the same property.
    #[test]
    fn sharded_matrix_engine_matches_calendar_on_random_topologies(
        dcs in 2u8..4,
        servers in 1u16..3,
        clients in 1u16..3,
        seed in 0u64..500,
        groups in 1u16..4,
        threads in 1usize..4,
        raw_overrides in prop::collection::vec((0u8..4, 0u8..4, 0u8..5, 0u64..30_000_000), 0..5),
    ) {
        let mut cost = CostModel::functional();
        cost.interdc_overrides = raw_overrides
            .into_iter()
            .filter(|&(f, t, _, _)| f != t && f < dcs && t < dcs)
            .map(|(f, t, class, v)| (f, t, if class == 0 { 0 } else { 1_000_000 + v }))
            .collect();
        let want = digest(&cost, dcs, servers, clients, seed, SchedKind::Calendar, None, 1);
        let got = digest(
            &cost,
            dcs,
            servers,
            clients,
            seed,
            SchedKind::Sharded { shards: 0 },
            Some(groups),
            threads,
        );
        prop_assert_eq!(got, want);
    }
}
