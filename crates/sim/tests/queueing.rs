//! Queueing-theoretic sanity checks of the simulator: the whole
//! reproduction hinges on servers behaving like finite-capacity queueing
//! stations, so verify the M/D/c-style behaviour directly with a synthetic
//! open-loop workload.

use contrarian_sim::actor::{Actor, ActorCtx, TimerKind};
use contrarian_sim::cost::{CostModel, MsgClass, SimMessage};
use contrarian_sim::sim::Sim;
use contrarian_types::{Addr, DcId, Op, PartitionId};

#[derive(Clone)]
struct Req(u64);

impl SimMessage for Req {
    fn wire_size(&self) -> usize {
        64
    }
    fn class(&self) -> MsgClass {
        MsgClass::Data
    }
}

/// A client that fires `n` requests at a fixed interval (open loop) and
/// records response latencies; a server that just replies.
struct OpenLoop {
    server: Option<Addr>,
    interval_ns: u64,
    remaining: u64,
    sent_at: std::collections::HashMap<u64, u64>,
    latencies: Vec<u64>,
    seq: u64,
}

const FIRE: u16 = 1;

impl Actor for OpenLoop {
    type Msg = Req;

    fn on_start(&mut self, ctx: &mut dyn ActorCtx<Req>) {
        if self.server.is_some() {
            ctx.set_timer(1000, TimerKind::new(FIRE));
        }
    }

    fn on_message(&mut self, ctx: &mut dyn ActorCtx<Req>, from: Addr, msg: Req) {
        match self.server {
            None => ctx.send(from, msg), // server: echo
            Some(_) => {
                // client: record latency
                if let Some(t0) = self.sent_at.remove(&msg.0) {
                    self.latencies.push(ctx.now() - t0);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn ActorCtx<Req>, _kind: TimerKind) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        self.seq += 1;
        self.sent_at.insert(self.seq, ctx.now());
        ctx.send(self.server.unwrap(), Req(self.seq));
        if self.remaining > 0 {
            ctx.set_timer(self.interval_ns, TimerKind::new(FIRE));
        }
    }

    fn inject(_op: Op) -> Req {
        Req(0)
    }
}

fn run_open_loop(interval_ns: u64, workers: u32, n: u64) -> Vec<u64> {
    let mut cost = CostModel::functional();
    cost.rx_ns = 50_000; // 50µs deterministic service
    cost.tx_ns = 0;
    cost.client_tx_ns = 0;
    cost.client_rx_ns = 0;
    cost.cpu_per_kb_ns = 0;
    cost.wire_ns_per_kb = 0;
    cost.hop_latency_ns = 1_000;
    let mut sim: Sim<OpenLoop> = Sim::new(cost, 1);
    let server = Addr::server(DcId(0), PartitionId(0));
    sim.add_server(
        server,
        OpenLoop {
            server: None,
            interval_ns: 0,
            remaining: 0,
            sent_at: Default::default(),
            latencies: vec![],
            seq: 0,
        },
        workers,
    );
    let client = Addr::client(DcId(0), 0);
    sim.add_client(
        client,
        OpenLoop {
            server: Some(server),
            interval_ns,
            remaining: n,
            sent_at: Default::default(),
            latencies: vec![],
            seq: 1000,
        },
    );
    sim.start();
    sim.run_to_quiescence(u64::MAX);
    sim.actor(client).latencies.clone()
}

#[test]
fn underloaded_server_adds_no_queueing() {
    // Service 50µs, arrivals every 200µs (ρ = 0.25): latency ≈ 2 hops +
    // service, no queueing.
    let lats = run_open_loop(200_000, 1, 200);
    assert_eq!(lats.len(), 200);
    let mean = lats.iter().sum::<u64>() as f64 / lats.len() as f64;
    assert!((mean - 52_000.0).abs() < 2_000.0, "mean {mean}");
}

#[test]
fn overloaded_server_queues_linearly() {
    // Service 50µs, arrivals every 25µs (ρ = 2): the queue grows without
    // bound, so the *last* request waits roughly n × 25µs.
    let lats = run_open_loop(25_000, 1, 200);
    let max = *lats.iter().max().unwrap();
    assert!(
        max > 4_000_000,
        "saturated queue must build delay, max {max}"
    );
    // And latencies grow monotonically-ish: last > 10x first.
    assert!(lats.last().unwrap() > &(lats[0] * 10));
}

#[test]
fn doubling_workers_doubles_capacity() {
    // ρ = 2 with 1 worker is overload; with 2 workers it is critical but
    // stable-ish; with 4 it is underloaded.
    let l1 = run_open_loop(25_000, 1, 200);
    let l4 = run_open_loop(25_000, 4, 200);
    let max1 = *l1.iter().max().unwrap();
    let max4 = *l4.iter().max().unwrap();
    assert!(
        max4 * 10 < max1,
        "4 workers must remove the overload: max1={max1} max4={max4}"
    );
}

#[test]
fn deterministic_latency_sequences() {
    let a = run_open_loop(60_000, 2, 100);
    let b = run_open_loop(60_000, 2, 100);
    assert_eq!(a, b);
}
