//! Property tests of the calendar-queue scheduler: whatever the schedule
//! shape, it must pop in exactly the global `(t, seq)` order the heap
//! baseline defines, and the simulator built on it must preserve per-link
//! FIFO delivery.

use contrarian_sim::actor::{Actor, ActorCtx, TimerKind};
use contrarian_sim::cost::{CostModel, MsgClass, SimMessage};
use contrarian_sim::sched::{EventQueue, SchedKind};
use contrarian_sim::sim::Sim;
use contrarian_types::{Addr, DcId, Op, PartitionId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential test against the heap reference: arbitrary interleaved
    /// pushes (zero-delay, intra-bucket, cross-bucket, and far-overflow
    /// deltas) and pops yield identical `(t, seq)` streams, which also
    /// proves the global ordering invariant (the heap is trivially
    /// ordered).
    #[test]
    fn calendar_matches_heap_reference(
        ops in prop::collection::vec((0u8..4, 0u64..u64::MAX), 1..400),
        pop_every in 1usize..6,
    ) {
        let mut cal: EventQueue<()> = EventQueue::new(SchedKind::Calendar);
        let mut heap: EventQueue<()> = EventQueue::new(SchedKind::Heap);
        let mut now = 0u64;
        let mut seq = 0u64;
        for (i, (class, raw)) in ops.iter().enumerate() {
            seq += 1;
            let dt = match class {
                0 => 0,                      // same-tick fast path
                1 => raw % 10_000,           // current bucket
                2 => raw % 5_000_000,        // wheel
                _ => raw % 500_000_000,      // likely overflow
            };
            cal.push(now + dt, seq, ());
            heap.push(now + dt, seq, ());
            if i % pop_every == 0 {
                let a = cal.pop().map(|(t, s, _)| (t, s));
                let b = heap.pop().map(|(t, s, _)| (t, s));
                prop_assert_eq!(a, b);
                if let Some((t, _)) = a {
                    prop_assert!(t >= now, "time went backwards");
                    now = t;
                }
            }
        }
        let mut last = (now, 0u64);
        loop {
            let a = cal.pop().map(|(t, s, _)| (t, s));
            let b = heap.pop().map(|(t, s, _)| (t, s));
            prop_assert_eq!(a, b);
            match a {
                Some(pair) => {
                    prop_assert!(pair > last, "pops must be strictly (t, seq)-ordered");
                    last = pair;
                }
                None => break,
            }
        }
        prop_assert!(cal.is_empty());
    }
}

// ---- per-link FIFO under the calendar queue ----

#[derive(Clone)]
struct Tagged {
    n: u32,
    size: usize,
}

impl SimMessage for Tagged {
    fn wire_size(&self) -> usize {
        self.size
    }
    fn class(&self) -> MsgClass {
        if self.n.is_multiple_of(3) {
            MsgClass::Control
        } else {
            MsgClass::Data
        }
    }
}

/// Clients blast numbered messages at every server; servers log the
/// arrival order per sender.
struct FifoProbe {
    servers: u16,
    burst: u32,
    sizes: Vec<usize>,
    got: Vec<(Addr, u32)>,
}

impl Actor for FifoProbe {
    type Msg = Tagged;

    fn on_start(&mut self, ctx: &mut dyn ActorCtx<Tagged>) {
        if !ctx.self_addr().is_server() {
            for n in 0..self.burst {
                let size = self.sizes[n as usize % self.sizes.len()];
                for p in 0..self.servers {
                    ctx.send(Addr::server(DcId(0), PartitionId(p)), Tagged { n, size });
                }
            }
        }
    }

    fn on_message(&mut self, _ctx: &mut dyn ActorCtx<Tagged>, from: Addr, msg: Tagged) {
        self.got.push((from, msg.n));
    }

    fn on_timer(&mut self, _ctx: &mut dyn ActorCtx<Tagged>, _kind: TimerKind) {}

    fn inject(_op: Op) -> Tagged {
        Tagged { n: 0, size: 8 }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the cluster shape, message sizes, and worker counts, every
    /// (client, server) link delivers in send order.
    #[test]
    fn sim_preserves_per_link_fifo(
        servers in 1u16..5,
        clients in 1u16..5,
        burst in 1u32..25,
        workers in 1u32..4,
        sizes in prop::collection::vec(1usize..4096, 1..6),
        seed in 0u64..1000,
    ) {
        let mk = |servers: u16| FifoProbe {
            servers,
            burst,
            sizes: sizes.clone(),
            got: Vec::new(),
        };
        let mut sim: Sim<FifoProbe> =
            Sim::with_scheduler(CostModel::functional(), seed, SchedKind::Calendar);
        for p in 0..servers {
            sim.add_server(Addr::server(DcId(0), PartitionId(p)), mk(servers), workers);
        }
        for c in 0..clients {
            sim.add_client(Addr::client(DcId(0), c), mk(servers));
        }
        sim.start();
        sim.run_to_quiescence(u64::MAX);
        for p in 0..servers {
            let got = &sim.actor(Addr::server(DcId(0), PartitionId(p))).got;
            prop_assert_eq!(got.len(), clients as usize * burst as usize);
            for c in 0..clients {
                let from = Addr::client(DcId(0), c);
                let seen: Vec<u32> = got
                    .iter()
                    .filter(|(f, _)| *f == from)
                    .map(|(_, n)| *n)
                    .collect();
                let want: Vec<u32> = (0..burst).collect();
                prop_assert_eq!(seen, want, "link {}→p{} reordered", from, p);
            }
        }
    }
}
