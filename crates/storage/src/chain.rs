//! Per-key version chains.

use contrarian_types::{Value, VersionId};

/// One version of one key.
#[derive(Clone, Debug)]
pub struct Version<M> {
    pub vid: VersionId,
    pub value: Value,
    /// Protocol-specific metadata (dependency vector, old-reader record, …).
    pub meta: M,
    /// Runtime timestamp (virtual/wall ns) at which the *origin* DC
    /// installed this write. Propagated in replication so remote reads
    /// and installs can measure visibility/data staleness against a
    /// clock comparable across backends. Zero when unknown (tests,
    /// prepopulated genesis data).
    pub birth: u64,
}

impl<M> Version<M> {
    pub fn new(vid: VersionId, value: Value, meta: M) -> Self {
        Version {
            vid,
            value,
            meta,
            birth: 0,
        }
    }

    /// Stamps the origin-install time (builder style so existing
    /// `Version::new` call sites stay untouched).
    pub fn with_birth(mut self, birth: u64) -> Self {
        self.birth = birth;
        self
    }
}

/// The versions of a single key, kept sorted ascending by [`VersionId`].
///
/// Inserts are usually appends (new versions have the largest id); remote
/// replication can interleave, so insertion falls back to a binary search.
#[derive(Clone, Debug)]
pub struct Chain<M> {
    versions: Vec<Version<M>>,
}

impl<M> Default for Chain<M> {
    fn default() -> Self {
        Chain {
            versions: Vec::new(),
        }
    }
}

impl<M> Chain<M> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.versions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Inserts a version, keeping the chain sorted. Inserting an id that is
    /// already present replaces it (idempotent replication delivery).
    pub fn insert(&mut self, v: Version<M>) {
        match self.versions.last() {
            Some(last) if last.vid < v.vid => self.versions.push(v),
            _ => match self.versions.binary_search_by(|e| e.vid.cmp(&v.vid)) {
                Ok(i) => self.versions[i] = v,
                Err(i) => self.versions.insert(i, v),
            },
        }
    }

    /// The newest version (the LWW winner).
    pub fn head(&self) -> Option<&Version<M>> {
        self.versions.last()
    }

    /// Newest-first iteration.
    pub fn iter_desc(&self) -> impl Iterator<Item = &Version<M>> {
        self.versions.iter().rev()
    }

    /// The newest version satisfying `pred` (e.g. `DV ≤ SV`). Also returns
    /// how many versions were scanned, so callers can charge CPU for the
    /// walk.
    pub fn newest_visible<F>(&self, mut pred: F) -> (Option<&Version<M>>, usize)
    where
        F: FnMut(&Version<M>) -> bool,
    {
        let mut scanned = 0;
        for v in self.iter_desc() {
            scanned += 1;
            if pred(v) {
                return (Some(v), scanned);
            }
        }
        (None, scanned)
    }

    /// The newest version with `vid.ts` strictly below `ts_bound`
    /// (CC-LO's "most recent version before that time" rule).
    pub fn newest_before(&self, ts_bound: u64) -> (Option<&Version<M>>, usize) {
        self.newest_visible(|v| v.vid.ts < ts_bound)
    }

    /// Drops versions with `vid.ts < horizon_ts`, always retaining at least
    /// the newest `min_keep` versions. Returns the number dropped.
    pub fn gc(&mut self, horizon_ts: u64, min_keep: usize) -> usize {
        if self.versions.len() <= min_keep {
            return 0;
        }
        let max_drop = self.versions.len() - min_keep;
        let cut = self
            .versions
            .iter()
            .take(max_drop)
            .take_while(|v| v.vid.ts < horizon_ts)
            .count();
        if cut > 0 {
            self.versions.drain(..cut);
        }
        cut
    }

    /// Panics if the sorted-ascending invariant is violated (test helper).
    pub fn assert_invariants(&self) {
        for w in self.versions.windows(2) {
            assert!(w[0].vid < w[1].vid, "chain must be strictly ascending");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contrarian_types::DcId;

    fn v(ts: u64, dc: u8) -> Version<()> {
        Version::new(VersionId::new(ts, DcId(dc)), Value::from_static(b"x"), ())
    }

    #[test]
    fn insert_appends_in_order() {
        let mut c = Chain::new();
        c.insert(v(1, 0));
        c.insert(v(2, 0));
        c.insert(v(3, 0));
        assert_eq!(c.len(), 3);
        assert_eq!(c.head().unwrap().vid.ts, 3);
        c.assert_invariants();
    }

    #[test]
    fn insert_out_of_order_sorts() {
        let mut c = Chain::new();
        c.insert(v(5, 0));
        c.insert(v(2, 0));
        c.insert(v(9, 0));
        c.insert(v(3, 1));
        assert_eq!(c.head().unwrap().vid.ts, 9);
        let ts: Vec<u64> = c.iter_desc().map(|x| x.vid.ts).collect();
        assert_eq!(ts, vec![9, 5, 3, 2]);
        c.assert_invariants();
    }

    #[test]
    fn insert_same_vid_is_idempotent() {
        let mut c = Chain::new();
        c.insert(v(5, 0));
        c.insert(v(5, 0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn concurrent_versions_ordered_by_origin() {
        let mut c = Chain::new();
        c.insert(v(5, 1));
        c.insert(v(5, 0));
        // LWW winner is (5, dc1): higher origin breaks the tie.
        assert_eq!(c.head().unwrap().vid, VersionId::new(5, DcId(1)));
    }

    #[test]
    fn newest_visible_scans_newest_first() {
        let mut c = Chain::new();
        for ts in [1, 2, 3, 4] {
            c.insert(v(ts, 0));
        }
        let (found, scanned) = c.newest_visible(|ver| ver.vid.ts <= 2);
        assert_eq!(found.unwrap().vid.ts, 2);
        assert_eq!(scanned, 3); // looked at 4, 3, then matched 2
    }

    #[test]
    fn newest_before_is_strict() {
        let mut c = Chain::new();
        for ts in [10, 20, 30] {
            c.insert(v(ts, 0));
        }
        assert_eq!(c.newest_before(30).0.unwrap().vid.ts, 20);
        assert_eq!(c.newest_before(31).0.unwrap().vid.ts, 30);
        assert!(c.newest_before(10).0.is_none());
    }

    #[test]
    fn gc_respects_min_keep() {
        let mut c = Chain::new();
        for ts in 1..=10 {
            c.insert(v(ts, 0));
        }
        let dropped = c.gc(100, 3);
        assert_eq!(dropped, 7);
        assert_eq!(c.len(), 3);
        assert_eq!(c.head().unwrap().vid.ts, 10);
    }

    #[test]
    fn gc_respects_horizon() {
        let mut c = Chain::new();
        for ts in 1..=10 {
            c.insert(v(ts, 0));
        }
        let dropped = c.gc(4, 1);
        assert_eq!(dropped, 3);
        assert_eq!(c.len(), 7);
        assert_eq!(c.iter_desc().last().unwrap().vid.ts, 4);
    }

    #[test]
    fn gc_on_short_chain_is_noop() {
        let mut c = Chain::new();
        c.insert(v(1, 0));
        assert_eq!(c.gc(100, 1), 0);
        assert_eq!(c.len(), 1);
    }
}
