//! Multi-version key-value storage engine.
//!
//! Each partition owns one [`MvStore`]: a lazily materialized map from key
//! to a [`Chain`] of versions, totally ordered by [`VersionId`] (timestamp,
//! origin DC) — the last-writer-wins convergence order of Section 2.2.
//!
//! The per-version metadata type `M` is protocol specific:
//! * Contrarian/Cure store a dependency vector `DV` per version;
//! * CC-LO stores the *old-reader record* per version (the set of ROT ids
//!   that must not observe the version).
//!
//! Superseded versions are retained for a configurable window so that
//! slightly stale snapshot reads (and CC-LO's "most recent version before
//! time t" rule) can still be served, then garbage collected.

pub mod chain;
pub mod store;

pub use chain::{Chain, Version};
pub use store::MvStore;
