//! The per-partition multi-version store.

use crate::chain::{Chain, Version};
use contrarian_types::{Key, VersionId};
use std::collections::HashMap;

/// A partition's share of the data set: key → version chain.
///
/// Keys never written occupy no memory ("every partition stores 1M keys" in
/// the paper, lazily materialized here). Reads of absent keys return `None`
/// (the API's ⊥).
#[derive(Clone, Debug)]
pub struct MvStore<M> {
    map: HashMap<Key, Chain<M>>,
    n_versions: usize,
}

impl<M> Default for MvStore<M> {
    fn default() -> Self {
        MvStore {
            map: HashMap::new(),
            n_versions: 0,
        }
    }
}

impl<M> MvStore<M> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a version of `key`.
    pub fn put(&mut self, key: Key, v: Version<M>) {
        let chain = self.map.entry(key).or_default();
        let before = chain.len();
        chain.insert(v);
        self.n_versions += chain.len() - before;
    }

    pub fn chain(&self, key: Key) -> Option<&Chain<M>> {
        self.map.get(&key)
    }

    pub fn chain_mut(&mut self, key: Key) -> Option<&mut Chain<M>> {
        self.map.get_mut(&key)
    }

    /// The newest version of `key`, if any.
    pub fn latest(&self, key: Key) -> Option<&Version<M>> {
        self.map.get(&key).and_then(|c| c.head())
    }

    /// The newest version of `key` satisfying `pred`; also returns the scan
    /// length for CPU accounting.
    pub fn read_visible<F>(&self, key: Key, pred: F) -> (Option<&Version<M>>, usize)
    where
        F: FnMut(&Version<M>) -> bool,
    {
        match self.map.get(&key) {
            None => (None, 0),
            Some(c) => c.newest_visible(pred),
        }
    }

    /// Runs GC over every chain. Returns versions dropped.
    pub fn gc_all(&mut self, horizon_ts: u64, min_keep: usize) -> usize {
        let mut dropped = 0;
        // lint:allow(determinism): per-chain GC with a commutative drop count; visit order cannot reach histories or bytes
        for chain in self.map.values_mut() {
            dropped += chain.gc(horizon_ts, min_keep);
        }
        self.n_versions -= dropped;
        dropped
    }

    /// Number of materialized keys.
    pub fn n_keys(&self) -> usize {
        self.map.len()
    }

    /// Total number of live versions.
    pub fn n_versions(&self) -> usize {
        self.n_versions
    }

    /// Iterates over all (key, chain) pairs in arbitrary order — callers
    /// (convergence checks) must treat the result as an unordered set.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Chain<M>)> {
        // lint:allow(determinism): documented-unordered accessor; the convergence checks sort or set-compare what they collect
        self.map.iter()
    }

    /// `(key, head version id)` for every materialized key, in arbitrary
    /// order (the shape convergence checks compare).
    pub fn heads(&self) -> Vec<(Key, VersionId)> {
        self.map
            .iter()
            .filter_map(|(k, c)| c.head().map(|h| (*k, h.vid)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contrarian_types::{DcId, Value, VersionId};

    fn ver(ts: u64) -> Version<u32> {
        Version::new(
            VersionId::new(ts, DcId(0)),
            Value::from_static(b"v"),
            ts as u32,
        )
    }

    #[test]
    fn absent_key_reads_bottom() {
        let s: MvStore<u32> = MvStore::new();
        assert!(s.latest(Key(9)).is_none());
        let (v, scanned) = s.read_visible(Key(9), |_| true);
        assert!(v.is_none());
        assert_eq!(scanned, 0);
        assert_eq!(s.n_keys(), 0);
    }

    #[test]
    fn put_then_read_latest() {
        let mut s = MvStore::new();
        s.put(Key(1), ver(5));
        s.put(Key(1), ver(9));
        s.put(Key(2), ver(7));
        assert_eq!(s.latest(Key(1)).unwrap().vid.ts, 9);
        assert_eq!(s.latest(Key(2)).unwrap().vid.ts, 7);
        assert_eq!(s.n_keys(), 2);
        assert_eq!(s.n_versions(), 3);
    }

    #[test]
    fn read_visible_filters() {
        let mut s = MvStore::new();
        for ts in [1, 5, 9] {
            s.put(Key(1), ver(ts));
        }
        let (v, _) = s.read_visible(Key(1), |x| x.meta <= 5);
        assert_eq!(v.unwrap().vid.ts, 5);
    }

    #[test]
    fn gc_all_updates_version_count() {
        let mut s = MvStore::new();
        for k in 0..4u64 {
            for ts in 1..=5 {
                s.put(Key(k), ver(ts));
            }
        }
        assert_eq!(s.n_versions(), 20);
        let dropped = s.gc_all(100, 1);
        assert_eq!(dropped, 16);
        assert_eq!(s.n_versions(), 4);
        for k in 0..4u64 {
            assert_eq!(s.latest(Key(k)).unwrap().vid.ts, 5);
        }
    }

    #[test]
    fn idempotent_put_does_not_inflate_count() {
        let mut s = MvStore::new();
        s.put(Key(1), ver(5));
        s.put(Key(1), ver(5));
        assert_eq!(s.n_versions(), 1);
    }
}
