//! Thread-per-node live cluster.

use contrarian_runtime::actor::{Actor, ActorCtx, TimerKind};
use contrarian_runtime::history::HistorySink;
use contrarian_runtime::metrics::Metrics;
use contrarian_runtime::Runtime;
use contrarian_types::{Addr, HistoryEvent, Op};
use crossbeam::channel::{bounded, Receiver, Sender};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Input<M> {
    Msg { from: Addr, msg: M },
    Stop,
}

/// Shared run state: routing table, clock origin, stop/measure flags, and
/// the waitable history sink.
///
/// Metrics are *not* here: every node thread accumulates its own
/// [`Metrics`] and hands it back when the thread joins — the measurement
/// hot path takes no lock. History is only ever touched when `recording`
/// is set (functional runs), through a [`HistorySink`] whose condition
/// variable lets waiters sleep instead of poll.
struct Shared<M> {
    routes: HashMap<Addr, Sender<Input<M>>>,
    start: Instant,
    stopped: AtomicBool,
    measuring: AtomicBool,
    history: HistorySink,
    recording: bool,
}

/// A running cluster of actor threads.
pub struct LiveCluster<A: Actor> {
    shared: Arc<Shared<A::Msg>>,
    threads: Vec<JoinHandle<(A, Metrics)>>,
    addrs: Vec<Addr>,
}

/// A handle for injecting messages from outside the cluster (facade role).
pub struct LiveHandle<M> {
    shared: Arc<Shared<M>>,
}

impl<M: Send + 'static> LiveHandle<M> {
    pub fn send(&self, from: Addr, to: Addr, msg: M) {
        if let Some(tx) = self.shared.routes.get(&to) {
            let _ = tx.send(Input::Msg { from, msg });
        }
    }

    /// Blocks until some history event satisfies `pred`, scanning from
    /// `*cursor`; advances the cursor past the match. Waiters sleep on the
    /// sink's condition variable and are woken by appends — no CPU is
    /// burned polling.
    pub fn wait_for_history<F>(
        &self,
        cursor: &mut usize,
        timeout: Duration,
        pred: F,
    ) -> Option<HistoryEvent>
    where
        F: FnMut(&HistoryEvent) -> bool,
    {
        self.shared.history.wait_for(cursor, timeout, pred)
    }
}

impl<A: Actor + Send + 'static> LiveCluster<A> {
    /// Spawns one thread per node and calls `on_start` on each.
    pub fn start(nodes: Vec<(Addr, A)>, recording: bool, seed: u64) -> Self {
        let mut routes = HashMap::new();
        let mut rxs: Vec<(Addr, Receiver<Input<A::Msg>>)> = Vec::new();
        for (addr, _) in &nodes {
            let (tx, rx) = bounded::<Input<A::Msg>>(64 * 1024);
            routes.insert(*addr, tx);
            rxs.push((*addr, rx));
        }
        let shared = Arc::new(Shared {
            routes,
            start: Instant::now(),
            stopped: AtomicBool::new(false),
            measuring: AtomicBool::new(false),
            history: HistorySink::new(),
            recording,
        });

        let mut threads = Vec::new();
        let mut addrs = Vec::new();
        for ((addr, actor), (_, rx)) in nodes.into_iter().zip(rxs) {
            addrs.push(addr);
            let shared = shared.clone();
            let node_seed = seed
                ^ (addr.dc.0 as u64) << 32
                ^ (addr.idx as u64) << 8
                ^ matches!(addr.kind, contrarian_types::NodeKind::Client) as u64;
            threads.push(std::thread::spawn(move || {
                run_node(addr, actor, rx, shared, node_seed)
            }));
        }
        LiveCluster {
            shared,
            threads,
            addrs,
        }
    }

    pub fn handle(&self) -> LiveHandle<A::Msg> {
        LiveHandle {
            shared: self.shared.clone(),
        }
    }

    pub fn addrs(&self) -> &[Addr] {
        &self.addrs
    }

    /// Wall-clock nanoseconds since the cluster started.
    pub fn now(&self) -> u64 {
        self.shared.start.elapsed().as_nanos() as u64
    }

    /// Sends an operation to a client node.
    pub fn inject_op(&self, client: Addr, op: Op) {
        if let Some(tx) = self.shared.routes.get(&client) {
            let _ = tx.send(Input::Msg {
                from: client,
                msg: A::inject(op),
            });
        }
    }

    /// Turns measurement on or off (the live analogue of flipping
    /// `Metrics::enabled` after warmup; each node thread samples this flag).
    pub fn set_measuring(&self, on: bool) {
        self.shared.measuring.store(on, Ordering::SeqCst);
    }

    /// Signals closed-loop clients to stop issuing new operations.
    pub fn stop_issuing(&self) {
        self.shared.stopped.store(true, Ordering::SeqCst);
    }

    /// Stops every node and returns the final actors, metrics and history.
    /// The returned metrics are the per-thread sinks merged at join.
    pub fn shutdown(self) -> (Vec<(Addr, A)>, Metrics, Vec<HistoryEvent>) {
        self.shared.stopped.store(true, Ordering::SeqCst);
        for tx in self.shared.routes.values() {
            let _ = tx.send(Input::Stop);
        }
        let mut actors = Vec::new();
        let mut metrics = Metrics::new();
        for (t, addr) in self.threads.into_iter().zip(self.addrs.iter()) {
            let (actor, local) = t.join().expect("node thread panicked");
            metrics.absorb(&local);
            actors.push((*addr, actor));
        }
        let history = self.shared.history.take();
        (actors, metrics, history)
    }
}

impl<A: Actor + Send + 'static> Runtime<A> for LiveCluster<A> {
    fn now(&self) -> u64 {
        LiveCluster::now(self)
    }

    fn send(&mut self, from: Addr, to: Addr, msg: A::Msg) {
        // Same contract as the simulator's Runtime impl: an unknown
        // destination is a driver bug, not a droppable message.
        let tx = self
            .shared
            .routes
            .get(&to)
            .unwrap_or_else(|| panic!("unknown addr {to}"));
        let _ = tx.send(Input::Msg { from, msg });
    }

    fn stop_issuing(&mut self) {
        LiveCluster::stop_issuing(self);
    }

    fn addrs(&self) -> Vec<Addr> {
        self.addrs.clone()
    }
}

/// Per-node event loop: channel input + timer deadline queue. Returns the
/// actor and the thread-local metrics sink.
fn run_node<A: Actor>(
    addr: Addr,
    mut actor: A,
    rx: Receiver<Input<A::Msg>>,
    shared: Arc<Shared<A::Msg>>,
    seed: u64,
) -> (A, Metrics) {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Timer queue: (deadline, seq, kind); BinaryHeap is a max-heap so store
    // reversed deadlines.
    let mut timers: BinaryHeap<std::cmp::Reverse<(Instant, u64, u16, u64)>> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    // The thread-local metrics sink: all handler effects accumulate here and
    // the whole thing is handed back on join — no shared lock on this path.
    let mut metrics = Metrics::new();

    let fire = |actor: &mut A,
                rng: &mut SmallRng,
                timers: &mut BinaryHeap<std::cmp::Reverse<(Instant, u64, u16, u64)>>,
                timer_seq: &mut u64,
                metrics: &mut Metrics,
                ev: Event<A::Msg>| {
        metrics.enabled = shared.measuring.load(Ordering::Relaxed);
        let mut ctx = LiveCtx {
            addr,
            shared: &shared,
            rng,
            out: Vec::new(),
            new_timers: Vec::new(),
            metrics,
        };
        match ev {
            Event::Start => actor.on_start(&mut ctx),
            Event::Msg { from, msg } => actor.on_message(&mut ctx, from, msg),
            Event::Timer(kind) => actor.on_timer(&mut ctx, kind),
        }
        let LiveCtx {
            out, new_timers, ..
        } = ctx;
        for (to, msg) in out {
            if let Some(tx) = shared.routes.get(&to) {
                let _ = tx.send(Input::Msg { from: addr, msg });
            }
        }
        for (delay_ns, kind) in new_timers {
            *timer_seq += 1;
            let deadline = Instant::now() + Duration::from_nanos(delay_ns);
            timers.push(std::cmp::Reverse((deadline, *timer_seq, kind.kind, kind.a)));
        }
    };

    fire(
        &mut actor,
        &mut rng,
        &mut timers,
        &mut timer_seq,
        &mut metrics,
        Event::Start,
    );

    loop {
        // Fire due timers.
        let now = Instant::now();
        while let Some(std::cmp::Reverse((deadline, _, kind, a))) = timers.peek().copied() {
            if deadline > now {
                break;
            }
            timers.pop();
            fire(
                &mut actor,
                &mut rng,
                &mut timers,
                &mut timer_seq,
                &mut metrics,
                Event::Timer(TimerKind::with_arg(kind, a)),
            );
        }
        // Wait for the next input or timer deadline.
        let wait = timers
            .peek()
            .map(|std::cmp::Reverse((d, ..))| d.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(5));
        match rx.recv_timeout(wait.min(Duration::from_millis(5))) {
            Ok(Input::Msg { from, msg }) => fire(
                &mut actor,
                &mut rng,
                &mut timers,
                &mut timer_seq,
                &mut metrics,
                Event::Msg { from, msg },
            ),
            Ok(Input::Stop) => break,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        }
    }
    (actor, metrics)
}

enum Event<M> {
    Start,
    Msg { from: Addr, msg: M },
    Timer(TimerKind),
}

struct LiveCtx<'a, M> {
    addr: Addr,
    shared: &'a Shared<M>,
    rng: &'a mut SmallRng,
    out: Vec<(Addr, M)>,
    new_timers: Vec<(u64, TimerKind)>,
    /// The node thread's metrics sink (merged into the cluster total when
    /// the thread joins).
    metrics: &'a mut Metrics,
}

impl<'a, M> ActorCtx<M> for LiveCtx<'a, M> {
    fn now(&self) -> u64 {
        self.shared.start.elapsed().as_nanos() as u64
    }

    fn self_addr(&self) -> Addr {
        self.addr
    }

    fn send(&mut self, to: Addr, msg: M) {
        self.out.push((to, msg));
    }

    fn set_timer(&mut self, delay_ns: u64, kind: TimerKind) {
        self.new_timers.push((delay_ns, kind));
    }

    fn charge(&mut self, _ns: u64) {
        // Real time: CPU is charged by actually spending it.
    }

    fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    fn record(&mut self, ev: HistoryEvent) {
        if self.shared.recording {
            self.shared.history.append(ev);
        }
    }

    fn recording(&self) -> bool {
        self.shared.recording
    }

    fn stopped(&self) -> bool {
        self.shared.stopped.load(Ordering::SeqCst)
    }
}
