//! Thread-per-node live cluster over in-process channels.

use contrarian_runtime::actor::Actor;
use contrarian_runtime::metrics::Metrics;
use contrarian_runtime::node_loop::{node_seed, run_node, Input, Outbound, RunShared};
use contrarian_runtime::Runtime;
use contrarian_types::{Addr, HistoryEvent, Op};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Shared run state: the routing table plus the flags/history every live
/// runtime carries (see [`RunShared`]).
struct Shared<M> {
    routes: HashMap<Addr, Sender<Input<M>>>,
    run: RunShared,
}

/// A running cluster of actor threads.
pub struct LiveCluster<A: Actor> {
    shared: Arc<Shared<A::Msg>>,
    threads: Vec<JoinHandle<(A, Metrics)>>,
    addrs: Vec<Addr>,
}

/// A handle for injecting messages from outside the cluster (facade role).
pub struct LiveHandle<M> {
    shared: Arc<Shared<M>>,
}

impl<M: Send + 'static> LiveHandle<M> {
    pub fn send(&self, from: Addr, to: Addr, msg: M) {
        if let Some(tx) = self.shared.routes.get(&to) {
            let _ = tx.send(Input::Msg { from, msg });
        }
    }

    /// Blocks until some history event satisfies `pred`, scanning from
    /// `*cursor`; advances the cursor past the match. Waiters sleep on the
    /// sink's condition variable and are woken by appends — no CPU is
    /// burned polling.
    pub fn wait_for_history<F>(
        &self,
        cursor: &mut usize,
        timeout: Duration,
        pred: F,
    ) -> Option<HistoryEvent>
    where
        F: FnMut(&HistoryEvent) -> bool,
    {
        self.shared.run.history.wait_for(cursor, timeout, pred)
    }
}

/// The [`Outbound`] of the in-process transport: deliver = push onto the
/// destination's input channel.
struct ChannelOutbound<M>(Arc<Shared<M>>);

impl<M: Send + 'static> Outbound<M> for ChannelOutbound<M> {
    fn deliver(&mut self, from: Addr, to: Addr, msg: M) {
        if let Some(tx) = self.0.routes.get(&to) {
            let _ = tx.send(Input::Msg { from, msg });
        }
    }
}

impl<A: Actor + Send + 'static> LiveCluster<A> {
    /// Spawns one thread per node and calls `on_start` on each.
    pub fn start(nodes: Vec<(Addr, A)>, recording: bool, seed: u64) -> Self {
        let mut routes = HashMap::new();
        let mut rxs: Vec<(Addr, Receiver<Input<A::Msg>>)> = Vec::new();
        for (addr, _) in &nodes {
            let (tx, rx) = bounded::<Input<A::Msg>>(64 * 1024);
            routes.insert(*addr, tx);
            rxs.push((*addr, rx));
        }
        let shared = Arc::new(Shared {
            routes,
            run: RunShared::new(recording),
        });

        let mut threads = Vec::new();
        let mut addrs = Vec::new();
        for ((addr, actor), (_, rx)) in nodes.into_iter().zip(rxs) {
            addrs.push(addr);
            let shared = shared.clone();
            let node_seed = node_seed(seed, addr);
            threads.push(std::thread::spawn(move || {
                run_node(
                    addr,
                    actor,
                    rx,
                    ChannelOutbound(shared.clone()),
                    &shared.run,
                    node_seed,
                )
            }));
        }
        LiveCluster {
            shared,
            threads,
            addrs,
        }
    }

    pub fn handle(&self) -> LiveHandle<A::Msg> {
        LiveHandle {
            shared: self.shared.clone(),
        }
    }

    pub fn addrs(&self) -> &[Addr] {
        &self.addrs
    }

    /// Wall-clock nanoseconds since the cluster started.
    pub fn now(&self) -> u64 {
        self.shared.run.now()
    }

    /// Sends an operation to a client node.
    pub fn inject_op(&self, client: Addr, op: Op) {
        if let Some(tx) = self.shared.routes.get(&client) {
            let _ = tx.send(Input::Msg {
                from: client,
                msg: A::inject(op),
            });
        }
    }

    /// Turns measurement on or off (the live analogue of flipping
    /// `Metrics::enabled` after warmup; each node thread samples this flag).
    pub fn set_measuring(&self, on: bool) {
        self.shared.run.measuring.store(on, Ordering::SeqCst);
    }

    /// Signals closed-loop clients to stop issuing new operations.
    pub fn stop_issuing(&self) {
        self.shared.run.stopped.store(true, Ordering::SeqCst);
    }

    /// Drains the history recorded since the last drain, releasing it
    /// from the shared sink (see
    /// [`contrarian_runtime::HistorySink::drain`]). Lets a
    /// streaming consumer check long runs without the sink holding the
    /// whole log.
    pub fn drain_history(&self) -> Vec<HistoryEvent> {
        self.shared.run.history.drain()
    }

    /// Stops every node and returns the final actors, metrics and history.
    /// The returned metrics are the per-thread sinks merged at join.
    pub fn shutdown(self) -> (Vec<(Addr, A)>, Metrics, Vec<HistoryEvent>) {
        self.shared.run.stopped.store(true, Ordering::SeqCst);
        for tx in self.shared.routes.values() {
            let _ = tx.send(Input::Stop);
        }
        let mut actors = Vec::new();
        let mut metrics = Metrics::new();
        for (t, addr) in self.threads.into_iter().zip(self.addrs.iter()) {
            let (actor, local) = t.join().expect("node thread panicked");
            metrics.absorb(&local);
            actors.push((*addr, actor));
        }
        let history = self.shared.run.history.take();
        (actors, metrics, history)
    }
}

impl<A: Actor + Send + 'static> Runtime<A> for LiveCluster<A> {
    fn now(&self) -> u64 {
        LiveCluster::now(self)
    }

    fn send(&mut self, from: Addr, to: Addr, msg: A::Msg) {
        // Same contract as the simulator's Runtime impl: an unknown
        // destination is a driver bug, not a droppable message.
        let tx = self
            .shared
            .routes
            .get(&to)
            .unwrap_or_else(|| panic!("unknown addr {to}"));
        let _ = tx.send(Input::Msg { from, msg });
    }

    fn stop_issuing(&mut self) {
        LiveCluster::stop_issuing(self);
    }

    fn addrs(&self) -> Vec<Addr> {
        self.addrs.clone()
    }
}
