//! Thread-per-node live cluster.

use contrarian_sim::actor::{Actor, ActorCtx, TimerKind};
use contrarian_sim::metrics::Metrics;
use contrarian_types::{Addr, HistoryEvent, Op};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Input<M> {
    Msg { from: Addr, msg: M },
    Stop,
}

/// Shared run state: routing table, clock origin, metrics and history sinks.
struct Shared<M> {
    routes: HashMap<Addr, Sender<Input<M>>>,
    start: Instant,
    stopped: AtomicBool,
    metrics: Mutex<Metrics>,
    history: Mutex<Vec<HistoryEvent>>,
    recording: bool,
}

/// A running cluster of actor threads.
pub struct LiveCluster<A: Actor> {
    shared: Arc<Shared<A::Msg>>,
    threads: Vec<JoinHandle<A>>,
    addrs: Vec<Addr>,
}

/// A handle for injecting messages from outside the cluster (facade role).
pub struct LiveHandle<M> {
    shared: Arc<Shared<M>>,
}

impl<M: Send + 'static> LiveHandle<M> {
    pub fn send(&self, from: Addr, to: Addr, msg: M) {
        if let Some(tx) = self.shared.routes.get(&to) {
            let _ = tx.send(Input::Msg { from, msg });
        }
    }

    /// Blocks until some history event satisfies `pred`, scanning from
    /// `*cursor`; advances the cursor past the match.
    pub fn wait_for_history<F>(
        &self,
        cursor: &mut usize,
        timeout: Duration,
        mut pred: F,
    ) -> Option<HistoryEvent>
    where
        F: FnMut(&HistoryEvent) -> bool,
    {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let hist = self.shared.history.lock();
                for i in *cursor..hist.len() {
                    if pred(&hist[i]) {
                        *cursor = i + 1;
                        return Some(hist[i].clone());
                    }
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

impl<A: Actor + Send + 'static> LiveCluster<A> {
    /// Spawns one thread per node and calls `on_start` on each.
    pub fn start(nodes: Vec<(Addr, A)>, recording: bool, seed: u64) -> Self {
        let mut routes = HashMap::new();
        let mut rxs: Vec<(Addr, Receiver<Input<A::Msg>>)> = Vec::new();
        for (addr, _) in &nodes {
            let (tx, rx) = bounded::<Input<A::Msg>>(64 * 1024);
            routes.insert(*addr, tx);
            rxs.push((*addr, rx));
        }
        let shared = Arc::new(Shared {
            routes,
            start: Instant::now(),
            stopped: AtomicBool::new(false),
            metrics: Mutex::new(Metrics::new()),
            history: Mutex::new(Vec::new()),
            recording,
        });

        let mut threads = Vec::new();
        let mut addrs = Vec::new();
        for ((addr, actor), (_, rx)) in nodes.into_iter().zip(rxs) {
            addrs.push(addr);
            let shared = shared.clone();
            let node_seed = seed
                ^ (addr.dc.0 as u64) << 32
                ^ (addr.idx as u64) << 8
                ^ matches!(addr.kind, contrarian_types::NodeKind::Client) as u64;
            threads.push(std::thread::spawn(move || {
                run_node(addr, actor, rx, shared, node_seed)
            }));
        }
        LiveCluster {
            shared,
            threads,
            addrs,
        }
    }

    pub fn handle(&self) -> LiveHandle<A::Msg> {
        LiveHandle {
            shared: self.shared.clone(),
        }
    }

    pub fn addrs(&self) -> &[Addr] {
        &self.addrs
    }

    /// Sends an operation to a client node.
    pub fn inject_op(&self, client: Addr, op: Op) {
        if let Some(tx) = self.shared.routes.get(&client) {
            let _ = tx.send(Input::Msg {
                from: client,
                msg: A::inject(op),
            });
        }
    }

    /// Signals closed-loop clients to stop issuing new operations.
    pub fn stop_issuing(&self) {
        self.shared.stopped.store(true, Ordering::SeqCst);
    }

    /// Stops every node and returns the final actors, metrics and history.
    pub fn shutdown(self) -> (Vec<(Addr, A)>, Metrics, Vec<HistoryEvent>) {
        self.shared.stopped.store(true, Ordering::SeqCst);
        for tx in self.shared.routes.values() {
            let _ = tx.send(Input::Stop);
        }
        let mut actors = Vec::new();
        for (t, addr) in self.threads.into_iter().zip(self.addrs.iter()) {
            actors.push((*addr, t.join().expect("node thread panicked")));
        }
        let metrics = self.shared.metrics.lock().clone();
        let history = std::mem::take(&mut *self.shared.history.lock());
        (actors, metrics, history)
    }
}

/// Per-node event loop: channel input + timer deadline queue.
fn run_node<A: Actor>(
    addr: Addr,
    mut actor: A,
    rx: Receiver<Input<A::Msg>>,
    shared: Arc<Shared<A::Msg>>,
    seed: u64,
) -> A {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Timer queue: (deadline, seq, kind); BinaryHeap is a max-heap so store
    // reversed deadlines.
    let mut timers: BinaryHeap<std::cmp::Reverse<(Instant, u64, u16, u64)>> = BinaryHeap::new();
    let mut timer_seq = 0u64;

    let fire = |actor: &mut A,
                rng: &mut SmallRng,
                timers: &mut BinaryHeap<std::cmp::Reverse<(Instant, u64, u16, u64)>>,
                timer_seq: &mut u64,
                ev: Event<A::Msg>| {
        let mut local = Metrics::new();
        local.enabled = shared.metrics.lock().enabled;
        let mut ctx = LiveCtx {
            addr,
            shared: &shared,
            rng,
            out: Vec::new(),
            new_timers: Vec::new(),
            local_metrics: local,
        };
        match ev {
            Event::Start => actor.on_start(&mut ctx),
            Event::Msg { from, msg } => actor.on_message(&mut ctx, from, msg),
            Event::Timer(kind) => actor.on_timer(&mut ctx, kind),
        }
        let LiveCtx {
            out,
            new_timers,
            local_metrics,
            ..
        } = ctx;
        if local_metrics.ops_done() > 0 || !local_metrics.counters.is_empty() {
            shared.metrics.lock().absorb(&local_metrics);
        }
        for (to, msg) in out {
            if let Some(tx) = shared.routes.get(&to) {
                let _ = tx.send(Input::Msg { from: addr, msg });
            }
        }
        for (delay_ns, kind) in new_timers {
            *timer_seq += 1;
            let deadline = Instant::now() + Duration::from_nanos(delay_ns);
            timers.push(std::cmp::Reverse((deadline, *timer_seq, kind.kind, kind.a)));
        }
    };

    fire(
        &mut actor,
        &mut rng,
        &mut timers,
        &mut timer_seq,
        Event::Start,
    );

    loop {
        // Fire due timers.
        let now = Instant::now();
        while let Some(std::cmp::Reverse((deadline, _, kind, a))) = timers.peek().copied() {
            if deadline > now {
                break;
            }
            timers.pop();
            fire(
                &mut actor,
                &mut rng,
                &mut timers,
                &mut timer_seq,
                Event::Timer(TimerKind::with_arg(kind, a)),
            );
        }
        // Wait for the next input or timer deadline.
        let wait = timers
            .peek()
            .map(|std::cmp::Reverse((d, ..))| d.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(5));
        match rx.recv_timeout(wait.min(Duration::from_millis(5))) {
            Ok(Input::Msg { from, msg }) => fire(
                &mut actor,
                &mut rng,
                &mut timers,
                &mut timer_seq,
                Event::Msg { from, msg },
            ),
            Ok(Input::Stop) => break,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        }
    }
    actor
}

enum Event<M> {
    Start,
    Msg { from: Addr, msg: M },
    Timer(TimerKind),
}

struct LiveCtx<'a, M> {
    addr: Addr,
    shared: &'a Shared<M>,
    rng: &'a mut SmallRng,
    out: Vec<(Addr, M)>,
    new_timers: Vec<(u64, TimerKind)>,
    /// Per-handler metrics scratch, merged into the shared metrics after
    /// the handler returns.
    local_metrics: Metrics,
}

impl<'a, M> ActorCtx<M> for LiveCtx<'a, M> {
    fn now(&self) -> u64 {
        self.shared.start.elapsed().as_nanos() as u64
    }

    fn self_addr(&self) -> Addr {
        self.addr
    }

    fn send(&mut self, to: Addr, msg: M) {
        self.out.push((to, msg));
    }

    fn set_timer(&mut self, delay_ns: u64, kind: TimerKind) {
        self.new_timers.push((delay_ns, kind));
    }

    fn charge(&mut self, _ns: u64) {
        // Real time: CPU is charged by actually spending it.
    }

    fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    fn metrics(&mut self) -> &mut Metrics {
        &mut self.local_metrics
    }

    fn record(&mut self, ev: HistoryEvent) {
        if self.shared.recording {
            self.shared.history.lock().push(ev);
        }
    }

    fn recording(&self) -> bool {
        self.shared.recording
    }

    fn stopped(&self) -> bool {
        self.shared.stopped.load(Ordering::SeqCst)
    }
}
