//! A live, multi-threaded in-process transport for the protocol state
//! machines.
//!
//! The discrete-event simulator (`contrarian-sim`) executes protocols
//! deterministically under a cost model; this crate runs the *same*
//! `Actor` implementations (from `contrarian-runtime`, the substrate both
//! runtimes share — this crate does not depend on the simulator) as a real
//! concurrent system: every node gets an OS thread, links are crossbeam
//! channels (FIFO, like TCP connections), time is the wall clock, and
//! timers are per-thread deadline queues. Metrics accumulate in per-thread
//! sinks merged when threads join, and history goes through a waitable
//! `HistorySink`, so neither is a cross-thread hot-path lock.
//!
//! It exists to demonstrate that the protocol crates are real implementations
//! rather than simulation artifacts: integration tests run Contrarian and
//! CC-LO clusters on threads and check the histories with the same causal
//! checker used for simulated runs.
//!
//! The per-node event loop lives in `contrarian_runtime::node_loop`,
//! parameterized over an `Outbound` message sink: this crate plugs in
//! channels, `contrarian-net` plugs in sockets, and "how a node runs" is
//! defined exactly once — the live runtimes stay true siblings.

pub mod cluster;

pub use cluster::{LiveCluster, LiveHandle};
