//! The hand-rolled wire codec.
//!
//! The TCP transport (`contrarian-net`) moves protocol messages across real
//! sockets, so every message type needs a byte-level encoding. The paper's
//! implementation uses protobuf; this workspace builds fully offline (no
//! serde, no prost), so the codec is written by hand: a [`Wire`] trait with
//! `encode`/`decode`, fixed-width little-endian integers, `u32`
//! length-prefixed sequences, and one tag byte per enum variant.
//!
//! Design rules:
//!
//! * **Self-contained values** — decoding never needs out-of-band schema
//!   state; a [`Reader`] over the payload bytes is enough.
//! * **Total decoding** — every decode failure is a typed [`CodecError`],
//!   never a panic or an out-of-bounds read; corrupt and truncated frames
//!   are rejected, not trusted.
//! * **Bounded allocation** — a sequence length prefix is validated
//!   against the bytes actually remaining, using the element type's
//!   minimum encoded size ([`Wire::MIN_WIRE_SIZE`]), before any
//!   allocation, so a corrupt length cannot trigger a reservation larger
//!   than a small multiple of the frame itself.
//! * **Round-trip identity** — `decode(encode(x)) == x` for every value;
//!   property tests in each protocol crate enforce this for every message
//!   variant of every backend.
//!
//! The wire-size *estimates* used by the simulator's cost model live in
//! [`crate::wire`]; they predate this codec and intentionally stay separate
//! (they model the paper's protobuf encoding, not this one).

use crate::ids::{Addr, ClientId, DcId, NodeKind, PartitionId, TxId};
use crate::key::Key;
use crate::op::Op;
use crate::vector::DepVector;
use crate::version::VersionId;
use crate::Value;
use std::fmt;

/// Why a byte buffer failed to decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// Bytes the decoder needed at the failure point.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// An enum tag byte outside the type's valid set.
    BadTag {
        /// The type whose tag was invalid (for diagnostics).
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A sequence length prefix larger than the bytes that remain — a
    /// corrupt frame, rejected before any allocation happens.
    BadLength { claimed: usize, remaining: usize },
    /// Decoding succeeded but bytes were left over (only reported by
    /// [`from_bytes`], which requires exact consumption).
    Trailing { unread: usize },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "truncated: needed {needed} bytes, {remaining} left")
            }
            CodecError::BadTag { what, tag } => write!(f, "invalid {what} tag {tag:#x}"),
            CodecError::BadLength { claimed, remaining } => {
                write!(f, "length {claimed} exceeds {remaining} remaining bytes")
            }
            CodecError::Trailing { unread } => write!(f, "{unread} trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A cursor over an encoded payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Validates a sequence length prefix: each element needs at least
    /// `min_elem_bytes` more bytes, so anything claiming more elements than
    /// could possibly fit is corrupt.
    #[inline]
    pub fn check_len(&self, claimed: usize, min_elem_bytes: usize) -> Result<(), CodecError> {
        if claimed.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CodecError::BadLength {
                claimed,
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Types with a hand-rolled byte encoding.
///
/// `decode(encode(x)) == x` must hold for every value (proptest-enforced
/// for every protocol message of every backend).
pub trait Wire: Sized {
    /// The smallest number of bytes any value of this type occupies on the
    /// wire. Used to validate sequence length prefixes *before* allocating
    /// (`claimed * MIN_WIRE_SIZE` must fit in the remaining bytes), so the
    /// tighter the bound, the smaller the worst-case reservation a corrupt
    /// frame can cause. `1` is always sound.
    const MIN_WIRE_SIZE: usize = 1;

    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Reads one value from the cursor.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encodes a value into a fresh buffer.
pub fn to_bytes<T: Wire>(v: &T) -> Vec<u8> {
    let mut out = Vec::new();
    v.encode(&mut out);
    out
}

/// Decodes a value that must span the whole buffer (trailing bytes are an
/// error — a frame carries exactly one value).
pub fn from_bytes<T: Wire>(buf: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(buf);
    let v = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::Trailing {
            unread: r.remaining(),
        });
    }
    Ok(v)
}

// ---- primitives ----

macro_rules! impl_wire_le_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            const MIN_WIRE_SIZE: usize = std::mem::size_of::<$t>();

            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                let b = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("sized take")))
            }
        }
    )*};
}
impl_wire_le_int!(u8, u16, u32, u64);

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { what: "bool", tag }),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    const MIN_WIRE_SIZE: usize = 4;

    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = u32::decode(r)? as usize;
        r.check_len(len, T::MIN_WIRE_SIZE)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    const MIN_WIRE_SIZE: usize = A::MIN_WIRE_SIZE + B::MIN_WIRE_SIZE;

    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Wire for Value {
    const MIN_WIRE_SIZE: usize = 4;

    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_slice());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = u32::decode(r)? as usize;
        if len > r.remaining() {
            return Err(CodecError::BadLength {
                claimed: len,
                remaining: r.remaining(),
            });
        }
        Ok(Value::from(r.take(len)?.to_vec()))
    }
}

// ---- identifiers ----

impl Wire for DcId {
    const MIN_WIRE_SIZE: usize = 1;

    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(DcId(u8::decode(r)?))
    }
}

impl Wire for PartitionId {
    const MIN_WIRE_SIZE: usize = 2;

    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PartitionId(u16::decode(r)?))
    }
}

impl Wire for ClientId {
    const MIN_WIRE_SIZE: usize = 4;

    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ClientId(u32::decode(r)?))
    }
}

impl Wire for TxId {
    const MIN_WIRE_SIZE: usize = 8;

    fn encode(&self, out: &mut Vec<u8>) {
        self.client.encode(out);
        self.seq.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TxId {
            client: ClientId::decode(r)?,
            seq: u32::decode(r)?,
        })
    }
}

impl Wire for Key {
    const MIN_WIRE_SIZE: usize = 8;

    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Key(u64::decode(r)?))
    }
}

impl Wire for VersionId {
    const MIN_WIRE_SIZE: usize = 9;

    fn encode(&self, out: &mut Vec<u8>) {
        self.ts.encode(out);
        self.origin.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(VersionId {
            ts: u64::decode(r)?,
            origin: DcId::decode(r)?,
        })
    }
}

impl Wire for Addr {
    const MIN_WIRE_SIZE: usize = 4;

    fn encode(&self, out: &mut Vec<u8>) {
        self.dc.encode(out);
        out.push(match self.kind {
            NodeKind::Server => 0,
            NodeKind::Client => 1,
        });
        self.idx.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let dc = DcId::decode(r)?;
        let kind = match r.take(1)?[0] {
            0 => NodeKind::Server,
            1 => NodeKind::Client,
            tag => {
                return Err(CodecError::BadTag {
                    what: "NodeKind",
                    tag,
                })
            }
        };
        Ok(Addr {
            dc,
            kind,
            idx: u16::decode(r)?,
        })
    }
}

// ---- compound domain types ----

impl Wire for DepVector {
    const MIN_WIRE_SIZE: usize = 4;

    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for i in 0..self.len() {
            self.get(i).encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = u32::decode(r)? as usize;
        r.check_len(len, 8)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(u64::decode(r)?);
        }
        Ok(DepVector::from_vec(v))
    }
}

impl Wire for Op {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Op::Rot(keys) => {
                out.push(0);
                keys.encode(out);
            }
            Op::Put(key, value) => {
                out.push(1);
                key.encode(out);
                value.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(Op::Rot(Vec::decode(r)?)),
            1 => Ok(Op::Put(Key::decode(r)?, Value::decode(r)?)),
            tag => Err(CodecError::BadTag { what: "Op", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(u16::MAX - 1);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(true);
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![1u64, 2, 3]);
        round_trip((
            Key(9),
            Some((VersionId::new(3, DcId(1)), Value::from_static(b"x"))),
        ));
    }

    #[test]
    fn domain_types_round_trip() {
        round_trip(Addr::server(DcId(3), PartitionId(77)));
        round_trip(Addr::client(DcId(0), 12));
        round_trip(TxId::new(ClientId::new(DcId(2), 999), 31));
        round_trip(DepVector::from_vec(vec![0, u64::MAX, 42]));
        round_trip(Op::Rot(vec![Key(1), Key(2)]));
        round_trip(Op::Put(Key(5), Value::from(vec![0u8; 300])));
        round_trip(Value::new());
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let bytes = to_bytes(&u64::MAX);
        for cut in 0..bytes.len() {
            assert!(matches!(
                from_bytes::<u64>(&bytes[..cut]),
                Err(CodecError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&Key(7));
        bytes.push(0xAB);
        assert_eq!(
            from_bytes::<Key>(&bytes),
            Err(CodecError::Trailing { unread: 1 })
        );
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_before_allocating() {
        // A Vec<u64> claiming u32::MAX elements with 4 bytes of payload.
        let mut bytes = Vec::new();
        u32::MAX.encode(&mut bytes);
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        assert!(matches!(
            from_bytes::<Vec<u64>>(&bytes),
            Err(CodecError::BadLength { .. })
        ));
        // Same for a Value's byte-length prefix.
        assert!(matches!(
            from_bytes::<Value>(&bytes),
            Err(CodecError::BadLength { .. })
        ));
    }

    #[test]
    fn length_checks_use_the_element_minimum_not_one_byte() {
        // 44 payload bytes claiming 40 elements: with a 1-byte-per-element
        // bound this would pass the pre-allocation check (and only fail
        // later, after reserving 40 * size_of::<elem>()); the per-type
        // minimum (Key 8 + Option 1 = 9) rejects it before allocating.
        type Elem = (Key, Option<(VersionId, Value)>);
        assert_eq!(<Elem as Wire>::MIN_WIRE_SIZE, 9);
        let mut bytes = Vec::new();
        40u32.encode(&mut bytes);
        bytes.extend_from_slice(&[0; 40]);
        assert!(matches!(
            from_bytes::<Vec<Elem>>(&bytes),
            Err(CodecError::BadLength { .. })
        ));
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert!(matches!(
            from_bytes::<bool>(&[9]),
            Err(CodecError::BadTag { what: "bool", .. })
        ));
        assert!(matches!(
            from_bytes::<Op>(&[7]),
            Err(CodecError::BadTag { what: "Op", .. })
        ));
        // Addr with an invalid NodeKind byte.
        assert!(matches!(
            from_bytes::<Addr>(&[0, 5, 0, 0]),
            Err(CodecError::BadTag {
                what: "NodeKind",
                ..
            })
        ));
    }

    #[test]
    fn errors_display_diagnostics() {
        let e = CodecError::BadTag {
            what: "Op",
            tag: 0x7f,
        };
        assert!(e.to_string().contains("Op"));
        assert!(CodecError::Truncated {
            needed: 8,
            remaining: 3
        }
        .to_string()
        .contains("8"));
    }
}
