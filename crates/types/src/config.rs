//! Cluster-level configuration shared by all three protocols.

/// How Contrarian runs its ROTs: 1½ rounds (3 communication steps: client →
/// coordinator → partitions → client) or 2 rounds (4 steps: client →
/// coordinator → client → partitions → client). The paper's Section 4 notes
/// the choice can be made per ROT; `Adaptive` implements the optimization
/// Section 5.7 describes as under test in the paper: fall back to 2 rounds
/// when a ROT spans many partitions, where the coordinator fan-out stops
/// paying off.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RotMode {
    /// 3 communication steps; lower latency, more messages (Figure 3a).
    OneHalfRound,
    /// 4 communication steps; fewer messages, ~8% higher peak throughput
    /// (Figure 3b).
    TwoRound,
    /// Per-ROT choice: 1½ rounds for ROTs spanning fewer than
    /// `two_round_at` partitions, 2 rounds otherwise.
    Adaptive {
        /// Partition-count threshold at which a ROT switches to 2 rounds.
        two_round_at: u16,
    },
}

impl RotMode {
    /// Resolves the mode for a ROT spanning `parts` partitions.
    pub fn for_rot(self, parts: usize) -> RotMode {
        match self {
            RotMode::Adaptive { two_round_at } => {
                if parts >= two_round_at as usize {
                    RotMode::TwoRound
                } else {
                    RotMode::OneHalfRound
                }
            }
            fixed => fixed,
        }
    }
}

/// Topology of the intra-DC stabilization protocol that aggregates version
/// vectors into the Global Stable Snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StabilizationTopology {
    /// Partition 0 of each DC aggregates and broadcasts (2·N messages per
    /// round) — the default, analogous to GentleRain's tree aggregation.
    Star,
    /// Every partition broadcasts to every other (N² messages per round).
    AllToAll,
}

/// Static description of the cluster and of protocol tuning knobs.
///
/// Defaults mirror the paper's platform (Section 5.2): 32 partitions, 1M
/// keys per partition, stabilization every 5 ms, 500 ms garbage collection
/// of ROT ids in CC-LO reader records.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of DCs (`M ≥ 1`).
    pub n_dcs: u8,
    /// Number of partitions per DC (`N > 1`).
    pub n_partitions: u16,
    /// Worker threads per storage server (models the 16-hw-thread machines).
    pub workers_per_server: u16,
    /// Keys per partition (storage is lazily materialized).
    pub keys_per_partition: u64,
    /// Stabilization (GSS computation) period, microseconds.
    pub stabilization_interval_us: u64,
    /// Idle heartbeat period for replication channels, microseconds.
    pub heartbeat_interval_us: u64,
    /// CC-LO: ROT ids are garbage-collected from reader records this long
    /// after insertion (the paper's optimized implementation uses 500 ms).
    pub old_reader_gc_us: u64,
    /// Version chains retain superseded versions at least this long so that
    /// slightly stale snapshots remain readable.
    pub version_gc_retention_us: u64,
    /// Bound on simulated physical clock offset from true time (±), in
    /// microseconds. Only physical-clock protocols (Cure) block on it; HLC
    /// and Lamport protocols stay nonblocking regardless.
    pub clock_skew_us: u64,
    /// Contrarian ROT mode.
    pub rot_mode: RotMode,
    /// Stabilization aggregation topology.
    pub stab_topology: StabilizationTopology,
    /// Whether the data set is preloaded: the paper's platform stores 1M
    /// keys per partition *before* the run, so reads never return ⊥. When
    /// set, reads of never-written keys serve the shared genesis version
    /// (timestamp 0, no dependencies) instead of ⊥.
    pub prepopulated: bool,
    /// CC-LO ablation. COPS-SNOW answers a readers check with *all* old
    /// readers of a key (anyone who read a superseded version — the paper's
    /// footnote 3 calls this "an old reader of x in general"). Setting this
    /// flag refines the response to readers that are old *relative to the
    /// dependency version being checked*, a strictly smaller set. Default
    /// `false` (faithful to CC-LO).
    pub cclo_dep_precise_old_readers: bool,
}

impl ClusterConfig {
    /// The paper's evaluation platform: 32 partitions, 1M keys each.
    pub fn paper_default() -> Self {
        ClusterConfig {
            n_dcs: 1,
            n_partitions: 32,
            workers_per_server: 2,
            keys_per_partition: 1_000_000,
            stabilization_interval_us: 5_000,
            heartbeat_interval_us: 1_000,
            old_reader_gc_us: 500_000,
            version_gc_retention_us: 1_000_000,
            clock_skew_us: 1_000,
            rot_mode: RotMode::OneHalfRound,
            stab_topology: StabilizationTopology::Star,
            prepopulated: true,
            cclo_dep_precise_old_readers: false,
        }
    }

    /// A production-scale cluster: 128 partitions, 4× the paper's platform.
    /// The key count per partition is scaled down so the whole cluster
    /// still covers the paper's ~32M-key data set.
    pub fn large() -> Self {
        ClusterConfig {
            n_partitions: 128,
            keys_per_partition: 250_000,
            ..ClusterConfig::paper_default()
        }
    }

    /// The 256-partition tier: 8× the paper's platform, geo-replicated
    /// over two DCs so the sharded engine has a real shard boundary (the
    /// scale this tier exists to exercise). Keys per partition again
    /// scaled so the cluster covers the paper's ~32M-key data set.
    pub fn xlarge() -> Self {
        ClusterConfig {
            n_dcs: 2,
            n_partitions: 256,
            keys_per_partition: 125_000,
            ..ClusterConfig::paper_default()
        }
    }

    /// A small cluster for unit and integration tests.
    pub fn small() -> Self {
        ClusterConfig {
            n_dcs: 1,
            n_partitions: 4,
            workers_per_server: 2,
            keys_per_partition: 64,
            stabilization_interval_us: 1_000,
            heartbeat_interval_us: 500,
            old_reader_gc_us: 100_000,
            version_gc_retention_us: 200_000,
            clock_skew_us: 500,
            rot_mode: RotMode::OneHalfRound,
            stab_topology: StabilizationTopology::Star,
            prepopulated: false,
            cclo_dep_precise_old_readers: false,
        }
    }

    pub fn with_dcs(mut self, m: u8) -> Self {
        self.n_dcs = m;
        self
    }

    pub fn with_partitions(mut self, n: u16) -> Self {
        self.n_partitions = n;
        self
    }

    pub fn with_rot_mode(mut self, mode: RotMode) -> Self {
        self.rot_mode = mode;
        self
    }

    /// Adjusts a configuration for wall-clock execution (the live
    /// transports): simulated clock skew is meaningless under a real
    /// clock, and the test defaults' sub-millisecond stabilization /
    /// heartbeat periods are simulator-tuned — over real sockets every
    /// tick is a frame plus thread wakeups per server, and production
    /// systems stabilize every few milliseconds (the paper uses 5 ms).
    pub fn for_wall_clock(mut self) -> Self {
        self.clock_skew_us = 0;
        self.stabilization_interval_us = 5_000;
        self.heartbeat_interval_us = 5_000;
        self
    }

    /// Number of storage servers in the whole cluster.
    pub fn n_servers(&self) -> usize {
        self.n_dcs as usize * self.n_partitions as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_5_2() {
        let c = ClusterConfig::paper_default();
        assert_eq!(c.n_partitions, 32);
        assert_eq!(c.keys_per_partition, 1_000_000);
        assert_eq!(c.stabilization_interval_us, 5_000);
        assert_eq!(c.old_reader_gc_us, 500_000);
    }

    #[test]
    fn xlarge_tier_is_geo_replicated_and_covers_the_paper_data_set() {
        let c = ClusterConfig::xlarge();
        assert_eq!(c.n_partitions, 256);
        assert!(c.n_dcs >= 2, "a single-DC cluster has no shard boundary");
        assert_eq!(
            c.n_partitions as u64 * c.keys_per_partition,
            ClusterConfig::paper_default().n_partitions as u64
                * ClusterConfig::paper_default().keys_per_partition
        );
    }

    #[test]
    fn builders_compose() {
        let c = ClusterConfig::small().with_dcs(2).with_partitions(8);
        assert_eq!(c.n_dcs, 2);
        assert_eq!(c.n_servers(), 16);
    }

    #[test]
    fn wall_clock_config_softens_control_plane() {
        let c = ClusterConfig::small().for_wall_clock();
        assert_eq!(c.clock_skew_us, 0);
        assert_eq!(c.stabilization_interval_us, 5_000);
        assert_eq!(c.heartbeat_interval_us, 5_000);
    }
}
