//! Error type for the public (facade) API.

use std::fmt;

/// Errors surfaced by the embedded store API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The cluster was shut down while an operation was in flight.
    ClusterDown,
    /// An operation did not complete within the configured deadline.
    Timeout,
    /// Invalid argument (e.g., an empty ROT key set).
    InvalidArgument(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ClusterDown => write!(f, "cluster is shut down"),
            Error::Timeout => write!(f, "operation timed out"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Error::Timeout.to_string(), "operation timed out");
        assert!(Error::InvalidArgument("empty key set")
            .to_string()
            .contains("empty"));
    }
}
