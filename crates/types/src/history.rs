//! Execution history events used by the causal-consistency checker and by
//! the interactive store facade.
//!
//! Recording is optional (disabled in performance runs); when enabled, every
//! client records the completion of each of its operations, in its session
//! order. The checker in `contrarian-harness` replays these events to verify
//! the causal-snapshot property of ROTs, session guarantees, eventual
//! visibility and convergence.

use crate::ids::{ClientId, TxId};
use crate::key::Key;
use crate::version::VersionId;
use crate::Value;

/// One completed client operation.
#[derive(Clone, Debug)]
pub enum HistoryEvent {
    /// A ROT completed, returning for each key the version observed
    /// (`None` = ⊥, the key did not exist in the snapshot).
    RotDone {
        client: ClientId,
        tx: TxId,
        t_start: u64,
        t_end: u64,
        pairs: Vec<(Key, Option<VersionId>)>,
        /// Values, aligned with `pairs` (kept for the interactive facade;
        /// cheap `Bytes` clones).
        values: Vec<Option<Value>>,
    },
    /// A PUT completed, creating `vid`.
    PutDone {
        client: ClientId,
        /// Client-local PUT sequence number (for matching by the facade).
        seq: u32,
        t_start: u64,
        t_end: u64,
        key: Key,
        vid: VersionId,
    },
}

impl HistoryEvent {
    pub fn client(&self) -> ClientId {
        match self {
            HistoryEvent::RotDone { client, .. } => *client,
            HistoryEvent::PutDone { client, .. } => *client,
        }
    }

    pub fn t_end(&self) -> u64 {
        match self {
            HistoryEvent::RotDone { t_end, .. } => *t_end,
            HistoryEvent::PutDone { t_end, .. } => *t_end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::DcId;

    #[test]
    fn accessors() {
        let c = ClientId::new(DcId(0), 1);
        let ev = HistoryEvent::PutDone {
            client: c,
            seq: 0,
            t_start: 5,
            t_end: 9,
            key: Key(1),
            vid: VersionId::new(7, DcId(0)),
        };
        assert_eq!(ev.client(), c);
        assert_eq!(ev.t_end(), 9);
    }
}
