//! Identifiers for data centers, partitions, clients, transactions and nodes.

use std::fmt;

/// A data center (replication site). The paper evaluates `M ∈ {1, 2}` but the
/// protocols support any `M ≥ 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct DcId(pub u8);

impl DcId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dc{}", self.0)
    }
}

/// A partition (shard) of the key space. Every DC hosts one server per
/// partition; partition `p` in DC `m` is the replica of partition `p` in
/// every other DC (multi-master).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct PartitionId(pub u16);

impl PartitionId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A globally unique client identifier: the owning DC in the high bits and
/// the client index within that DC in the low bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct ClientId(pub u32);

impl ClientId {
    #[inline]
    pub fn new(dc: DcId, idx: u16) -> Self {
        ClientId(((dc.0 as u32) << 16) | idx as u32)
    }

    #[inline]
    pub fn dc(self) -> DcId {
        DcId((self.0 >> 16) as u8)
    }

    #[inline]
    pub fn idx(self) -> u16 {
        (self.0 & 0xffff) as u16
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}.{}", self.dc().0, self.idx())
    }
}

/// A transaction identifier: unique per ROT issued by a client.
///
/// COPS-SNOW tracks *ROT ids* (not client ids) in reader records precisely
/// because a client may have several transactions in flight over its
/// lifetime; two ROTs of the same client are distinct readers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxId {
    pub client: ClientId,
    pub seq: u32,
}

impl TxId {
    #[inline]
    pub fn new(client: ClientId, seq: u32) -> Self {
        TxId { client, seq }
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}#{}", self.client, self.seq)
    }
}

/// Whether a node is a storage server (one per partition per DC) or a client.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum NodeKind {
    Server,
    Client,
}

/// The address of a node in the cluster: `(dc, kind, index)`.
///
/// For servers the index is the partition id; for clients it is the client
/// index within the DC.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Addr {
    pub dc: DcId,
    pub kind: NodeKind,
    pub idx: u16,
}

impl Addr {
    #[inline]
    pub fn server(dc: DcId, partition: PartitionId) -> Self {
        Addr {
            dc,
            kind: NodeKind::Server,
            idx: partition.0,
        }
    }

    #[inline]
    pub fn client(dc: DcId, idx: u16) -> Self {
        Addr {
            dc,
            kind: NodeKind::Client,
            idx,
        }
    }

    #[inline]
    pub fn partition(self) -> PartitionId {
        debug_assert_eq!(self.kind, NodeKind::Server);
        PartitionId(self.idx)
    }

    #[inline]
    pub fn client_id(self) -> ClientId {
        debug_assert_eq!(self.kind, NodeKind::Client);
        ClientId::new(self.dc, self.idx)
    }

    #[inline]
    pub fn is_server(self) -> bool {
        self.kind == NodeKind::Server
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            NodeKind::Server => write!(f, "{}/p{}", self.dc, self.idx),
            NodeKind::Client => write!(f, "{}/c{}", self.dc, self.idx),
        }
    }
}

impl From<ClientId> for Addr {
    fn from(c: ClientId) -> Addr {
        Addr::client(c.dc(), c.idx())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_id_round_trips_dc_and_index() {
        let c = ClientId::new(DcId(3), 517);
        assert_eq!(c.dc(), DcId(3));
        assert_eq!(c.idx(), 517);
    }

    #[test]
    fn client_id_is_unique_across_dcs() {
        assert_ne!(ClientId::new(DcId(0), 1), ClientId::new(DcId(1), 1));
    }

    #[test]
    fn addr_from_client_id_round_trips() {
        let c = ClientId::new(DcId(2), 9);
        let a: Addr = c.into();
        assert_eq!(a.client_id(), c);
        assert_eq!(a.dc, DcId(2));
    }

    #[test]
    fn server_addr_partition() {
        let a = Addr::server(DcId(1), PartitionId(7));
        assert!(a.is_server());
        assert_eq!(a.partition(), PartitionId(7));
    }

    #[test]
    fn tx_ids_ordered_by_client_then_seq() {
        let c0 = ClientId::new(DcId(0), 0);
        let c1 = ClientId::new(DcId(0), 1);
        assert!(TxId::new(c0, 5) < TxId::new(c1, 0));
        assert!(TxId::new(c0, 1) < TxId::new(c0, 2));
    }

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(Addr::server(DcId(0), PartitionId(3)).to_string(), "dc0/p3");
        assert_eq!(
            TxId::new(ClientId::new(DcId(1), 2), 7).to_string(),
            "tc1.2#7"
        );
    }
}
