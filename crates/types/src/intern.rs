//! Dense interning of sparse identifiers.
//!
//! Checkers and routing tables index per-key and per-client state millions
//! of times; hashing a sparse id on every touch is what made the original
//! causal checker quadratic in practice. An [`Interner`] maps each distinct
//! value to a dense `u32` exactly once, after which all bookkeeping lives
//! in flat vectors indexed by that number.

use std::collections::HashMap;
use std::hash::Hash;

/// Maps values of `T` to dense indices `0..len()`, first-come first-served.
///
/// Indices are stable for the lifetime of the interner, and `resolve`
/// recovers the original value, so an index is a faithful compressed name.
#[derive(Clone, Debug, Default)]
pub struct Interner<T> {
    index: HashMap<T, u32>,
    values: Vec<T>,
}

impl<T: Copy + Eq + Hash> Interner<T> {
    pub fn new() -> Self {
        Interner {
            index: HashMap::new(),
            values: Vec::new(),
        }
    }

    /// The dense index of `value`, allocating the next one on first sight.
    #[inline]
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&i) = self.index.get(&value) {
            return i;
        }
        let i = u32::try_from(self.values.len()).expect("interner overflow");
        self.index.insert(value, i);
        self.values.push(value);
        i
    }

    /// The index of `value` if it has been interned, without allocating.
    #[inline]
    pub fn get(&self, value: T) -> Option<u32> {
        self.index.get(&value).copied()
    }

    /// The value behind a dense index (panics on an index this interner
    /// never handed out).
    #[inline]
    pub fn resolve(&self, idx: u32) -> T {
        self.values[idx as usize]
    }

    /// How many distinct values have been interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All interned values, in index order.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, DcId};
    use crate::key::Key;

    #[test]
    fn interning_is_dense_and_stable() {
        let mut i = Interner::new();
        assert_eq!(i.intern(Key(40)), 0);
        assert_eq!(i.intern(Key(7)), 1);
        assert_eq!(i.intern(Key(40)), 0, "re-interning returns the same index");
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(1), Key(7));
        assert_eq!(i.values(), &[Key(40), Key(7)]);
    }

    #[test]
    fn get_does_not_allocate() {
        let mut i = Interner::new();
        assert_eq!(i.get(ClientId::new(DcId(0), 3)), None);
        let idx = i.intern(ClientId::new(DcId(0), 3));
        assert_eq!(i.get(ClientId::new(DcId(0), 3)), Some(idx));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_interner() {
        let i: Interner<Key> = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.get(Key(0)), None);
    }
}
