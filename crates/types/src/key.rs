//! Keys and the deterministic key → partition mapping.

use crate::ids::PartitionId;
use std::fmt;

/// A key of the data store. Keys are 8 bytes, as in the paper's evaluation.
///
/// The key space is structured so that `key % n_partitions` is the owning
/// partition. This is the "deterministic hash function" of the system model
/// (Section 2.3) and makes it trivial for the workload generator to pick
/// "one key per partition" for a ROT, exactly as the paper's workloads do.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Key(pub u64);

impl Key {
    /// Builds the key with local index `local` on partition `p` out of `n`
    /// partitions.
    #[inline]
    pub fn compose(p: PartitionId, local: u64, n_partitions: u16) -> Key {
        Key(local * n_partitions as u64 + p.0 as u64)
    }

    /// The partition owning this key.
    #[inline]
    pub fn partition(self, n_partitions: u16) -> PartitionId {
        PartitionId((self.0 % n_partitions as u64) as u16)
    }

    /// The index of this key within its partition.
    #[inline]
    pub fn local_index(self, n_partitions: u16) -> u64 {
        self.0 / n_partitions as u64
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Key {
        Key(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_round_trips() {
        let n = 32;
        for p in [0u16, 1, 17, 31] {
            for local in [0u64, 1, 999_999] {
                let k = Key::compose(PartitionId(p), local, n);
                assert_eq!(k.partition(n), PartitionId(p));
                assert_eq!(k.local_index(n), local);
            }
        }
    }

    #[test]
    fn distinct_locals_give_distinct_keys() {
        let a = Key::compose(PartitionId(3), 5, 8);
        let b = Key::compose(PartitionId(3), 6, 8);
        assert_ne!(a, b);
        assert_eq!(a.partition(8), b.partition(8));
    }

    #[test]
    fn partitions_cover_modulo_classes() {
        let n = 4u16;
        // Every raw key maps to the expected class.
        for raw in 0u64..64 {
            assert_eq!(Key(raw).partition(n).0 as u64, raw % n as u64);
        }
    }
}
