//! Common types shared by every crate in the Contrarian workspace.
//!
//! This crate defines the vocabulary of the system model of Didona et al.,
//! *Causal Consistency and Latency Optimality: Friend or Foe?* (VLDB 2018):
//! a multi-version key-value store sharded over `N` partitions, each
//! replicated at `M` data centers (DCs) in a multi-master fashion, accessed
//! by clients issuing `PUT`s and causally consistent read-only transactions
//! (`ROT`s).
//!
//! Nothing in here is protocol specific; the three protocol crates
//! (`contrarian-core`, `contrarian-cclo`, `contrarian-cure`) all build on
//! these definitions.

pub mod codec;
pub mod config;
pub mod error;
pub mod history;
pub mod ids;
pub mod intern;
pub mod key;
pub mod op;
pub mod trace;
pub mod vector;
pub mod version;
pub mod wire;

pub use codec::{CodecError, Wire};
pub use config::{ClusterConfig, RotMode, StabilizationTopology};
pub use error::{Error, Result};
pub use history::HistoryEvent;
pub use ids::{Addr, ClientId, DcId, NodeKind, PartitionId, TxId};
pub use intern::Interner;
pub use key::Key;
pub use op::Op;
pub use trace::{TraceEvent, TraceKind};
pub use vector::DepVector;
pub use version::VersionId;
pub use wire::WireSize;

/// Values are opaque byte strings; [`bytes::Bytes`] makes cloning a value a
/// cheap refcount bump, which matters because a single hot version may be
/// returned by thousands of ROTs.
pub type Value = bytes::Bytes;

/// The value of the shared genesis version (see [`VersionId::GENESIS`]):
/// the preloaded initial content of every key on a prepopulated platform.
pub fn genesis_value() -> Value {
    Value::from_static(b"genesis\0")
}
