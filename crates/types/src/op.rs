//! Client-visible operations of the key-value store API (Section 2.1).

use crate::key::Key;
use crate::Value;

/// An operation a client can issue.
///
/// The paper's API also includes single-key `GET`; as in the paper
/// ("we focus on PUT and ROT operations") a GET is expressed as a ROT over
/// one key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// Read a causally consistent snapshot of the given keys.
    Rot(Vec<Key>),
    /// Create a new version of `key` with the given value.
    Put(Key, Value),
}

impl Op {
    pub fn is_put(&self) -> bool {
        matches!(self, Op::Put(..))
    }

    /// Number of individual reads this operation counts as in the w/r ratio
    /// (`w = #PUT / (#PUT + #READ)`, a ROT of k keys counting as k reads).
    pub fn read_count(&self) -> usize {
        match self {
            Op::Rot(keys) => keys.len(),
            Op::Put(..) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_count_counts_rot_keys() {
        assert_eq!(Op::Rot(vec![Key(1), Key(2), Key(3)]).read_count(), 3);
        assert_eq!(Op::Put(Key(1), Value::from_static(b"x")).read_count(), 0);
        assert!(Op::Put(Key(1), Value::new()).is_put());
    }
}
