//! Deterministic trace identities: what one traced occurrence *is*.
//!
//! A [`TraceEvent`] is the tracing analogue of a tagged history record:
//! it carries the virtual/wall timestamp the runtime already maintains
//! plus a `(node, seq)` identity assigned by the emitting node, so traces
//! collected by different simulator engines (heap, calendar, sharded)
//! merge into the *same* byte sequence the way histories do — sorting by
//! `(t, node, seq)` is a total order no engine interleaving can perturb.
//!
//! The payload stays deliberately flat (`kind` + two `u64` arguments)
//! so building an event costs two stores and no allocation; semantic
//! interpretation of `a`/`b` per kind lives in the table on
//! [`TraceKind`].

/// What kind of occurrence a [`TraceEvent`] records.
///
/// Argument meaning per kind:
///
/// | kind | `a` | `b` |
/// |---|---|---|
/// | `OpBegin` | op class (0 = ROT, 1 = PUT) | op sequence number |
/// | `OpEnd` | op class (0 = ROT, 1 = PUT) | start timestamp `t0` |
/// | `MsgSend` | destination node (global id) | wire size (bytes) |
/// | `MsgDeliver` | source node (global id) | wire size (bytes) |
/// | `Park` | park class (protocol-defined) | queue depth after parking |
/// | `Unpark` | park class (protocol-defined) | nanoseconds spent parked |
/// | `GssAdvance` | new GSS minimum entry | lag (fresh − GSS min) |
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum TraceKind {
    OpBegin = 0,
    OpEnd = 1,
    MsgSend = 2,
    MsgDeliver = 3,
    Park = 4,
    Unpark = 5,
    GssAdvance = 6,
}

impl TraceKind {
    /// Short stable label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::OpBegin => "op_begin",
            TraceKind::OpEnd => "op_end",
            TraceKind::MsgSend => "msg_send",
            TraceKind::MsgDeliver => "msg_deliver",
            TraceKind::Park => "park",
            TraceKind::Unpark => "unpark",
            TraceKind::GssAdvance => "gss_advance",
        }
    }
}

/// Op classes used in `OpBegin`/`OpEnd` events' `a` argument.
pub mod op_class {
    pub const ROT: u64 = 0;
    pub const PUT: u64 = 1;
}

/// One traced occurrence on one node.
///
/// `node` is the emitting node's *global* id (dense index over the
/// cluster's address list — the same id the simulator uses for event
/// keys), and `seq` is a per-node counter that keeps incrementing even
/// when the ring drops events, so drops are engine-independent and a
/// merged trace is a deterministic function of the run, never of the
/// engine or thread schedule.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceEvent {
    /// Virtual (simulator) or wall (live runtime) nanoseconds.
    pub t: u64,
    /// Emitting node's global id.
    pub node: u32,
    /// Per-node emission counter (monotone, survives ring drops).
    pub seq: u64,
    pub kind: TraceKind,
    /// First argument (see [`TraceKind`] table).
    pub a: u64,
    /// Second argument (see [`TraceKind`] table).
    pub b: u64,
}

impl TraceEvent {
    /// The canonical merge key: identical for the same logical run on
    /// every engine.
    pub fn key(&self) -> (u64, u32, u64) {
        (self.t, self.node, self.seq)
    }
}

impl PartialOrd for TraceEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TraceEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_order_by_time_then_node_then_seq() {
        let ev = |t, node, seq| TraceEvent {
            t,
            node,
            seq,
            kind: TraceKind::MsgSend,
            a: 0,
            b: 0,
        };
        let mut v = [ev(5, 0, 1), ev(1, 2, 0), ev(1, 1, 7), ev(1, 1, 3)];
        v.sort();
        let keys: Vec<_> = v.iter().map(|e| e.key()).collect();
        assert_eq!(keys, vec![(1, 1, 3), (1, 1, 7), (1, 2, 0), (5, 0, 1)]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TraceKind::OpBegin.label(), "op_begin");
        assert_eq!(TraceKind::GssAdvance.label(), "gss_advance");
    }
}
