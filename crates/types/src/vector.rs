//! Dependency / snapshot vectors with one entry per data center.
//!
//! Contrarian (like Cure) encodes causality with per-DC vectors:
//!
//! * every item version `X` carries a dependency vector `X.DV`: if
//!   `X.DV[i] = t` then `X` potentially causally depends on every item
//!   originally written in DC `i` with timestamp up to `t`;
//! * every ROT is assigned a snapshot vector `SV`; a version belongs to the
//!   snapshot iff `DV ≤ SV` entrywise;
//! * every partition computes a Global Stable Snapshot `GSS` as the
//!   entrywise minimum of the version vectors of all partitions in its DC.
//!
//! The operations below form the usual vector-clock lattice: `join`
//! (entrywise max), `meet` (entrywise min) and the partial order `leq`.

use std::fmt;
use std::ops::Index;

/// A vector with one `u64` timestamp entry per DC.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct DepVector(Vec<u64>);

impl DepVector {
    /// The all-zero vector for `m` DCs (bottom of the lattice).
    pub fn zero(m: usize) -> Self {
        DepVector(vec![0; m])
    }

    pub fn from_vec(v: Vec<u64>) -> Self {
        DepVector(v)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.0[i]
    }

    #[inline]
    pub fn set(&mut self, i: usize, v: u64) {
        self.0[i] = v;
    }

    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// Entrywise maximum (lattice join), in place.
    pub fn join(&mut self, other: &DepVector) {
        debug_assert_eq!(self.len(), other.len());
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Entrywise minimum (lattice meet), in place.
    pub fn meet(&mut self, other: &DepVector) {
        debug_assert_eq!(self.len(), other.len());
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            if *b < *a {
                *a = *b;
            }
        }
    }

    /// Returns the join of two vectors without mutating either.
    pub fn joined(&self, other: &DepVector) -> DepVector {
        let mut out = self.clone();
        out.join(other);
        out
    }

    /// The lattice partial order: `self ≤ other` iff every entry is ≤.
    pub fn leq(&self, other: &DepVector) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }

    /// Raises entry `i` to at least `v`.
    #[inline]
    pub fn raise(&mut self, i: usize, v: u64) {
        if v > self.0[i] {
            self.0[i] = v;
        }
    }

    /// The maximum entry (used to enforce that the local entry of a new
    /// version's DV dominates the remote entries).
    pub fn max_entry(&self) -> u64 {
        self.0.iter().copied().max().unwrap_or(0)
    }

    /// The minimum entry — the scalar "universal stable time" an
    /// Okapi-style backend distills a stabilized vector down to.
    pub fn min_entry(&self) -> u64 {
        self.0.iter().copied().min().unwrap_or(0)
    }
}

impl Index<usize> for DepVector {
    type Output = u64;
    fn index(&self, i: usize) -> &u64 {
        &self.0[i]
    }
}

impl fmt::Display for DepVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[u64]) -> DepVector {
        DepVector::from_vec(s.to_vec())
    }

    #[test]
    fn zero_is_bottom() {
        let z = DepVector::zero(3);
        assert!(z.leq(&v(&[0, 0, 0])));
        assert!(z.leq(&v(&[5, 0, 9])));
    }

    #[test]
    fn join_is_entrywise_max() {
        let mut a = v(&[1, 7, 3]);
        a.join(&v(&[4, 2, 3]));
        assert_eq!(a, v(&[4, 7, 3]));
    }

    #[test]
    fn meet_is_entrywise_min() {
        let mut a = v(&[1, 7, 3]);
        a.meet(&v(&[4, 2, 3]));
        assert_eq!(a, v(&[1, 2, 3]));
    }

    #[test]
    fn leq_is_partial() {
        // Incomparable vectors: neither ≤ the other.
        let a = v(&[1, 5]);
        let b = v(&[2, 3]);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        assert!(a.leq(&a));
    }

    #[test]
    fn raise_only_increases() {
        let mut a = v(&[5, 5]);
        a.raise(0, 3);
        assert_eq!(a[0], 5);
        a.raise(0, 9);
        assert_eq!(a[0], 9);
    }

    #[test]
    fn max_entry() {
        assert_eq!(v(&[3, 9, 1]).max_entry(), 9);
        assert_eq!(DepVector::zero(0).max_entry(), 0);
    }

    #[test]
    fn min_entry() {
        assert_eq!(v(&[3, 9, 1]).min_entry(), 1);
        assert_eq!(DepVector::zero(0).min_entry(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(v(&[1, 2]).to_string(), "[1,2]");
    }
}
