//! Version identifiers and the convergence (last-writer-wins) order.

use crate::ids::DcId;
use std::fmt;

/// Globally unique identifier of a version of some key.
///
/// `ts` is the timestamp assigned by the partition that created the version
/// (a Lamport time in CC-LO, an HLC value in Contrarian, a physical clock
/// value in Cure). `origin` is the DC where the PUT was performed.
///
/// The derived lexicographic order `(ts, origin)` is a total order used for
/// the last-writer-wins convergence rule of Section 2.2: concurrent updates
/// to the same key are ordered by timestamp, with the origin DC breaking
/// ties deterministically, so all replicas converge to the same value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VersionId {
    pub ts: u64,
    pub origin: DcId,
}

impl VersionId {
    #[inline]
    pub fn new(ts: u64, origin: DcId) -> Self {
        VersionId { ts, origin }
    }

    /// The synthetic *genesis* version: the paper's platform prepopulates
    /// every partition with 1M keys, so a read never returns ⊥. We model the
    /// preloaded initial version of every key as a shared timestamp-0
    /// version served lazily (no memory per key). It has no causal
    /// dependencies and belongs to every snapshot.
    pub const GENESIS: VersionId = VersionId {
        ts: 0,
        origin: DcId(0),
    };

    #[inline]
    pub fn is_genesis(&self) -> bool {
        self.ts == 0
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}@{}", self.ts, self.origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lww_order_is_timestamp_major() {
        let a = VersionId::new(10, DcId(1));
        let b = VersionId::new(11, DcId(0));
        assert!(a < b);
    }

    #[test]
    fn lww_order_breaks_ties_by_origin() {
        let a = VersionId::new(10, DcId(0));
        let b = VersionId::new(10, DcId(1));
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn genesis_precedes_every_real_version() {
        assert!(VersionId::GENESIS.is_genesis());
        assert!(VersionId::GENESIS < VersionId::new(1, DcId(0)));
        assert!(!VersionId::new(1, DcId(0)).is_genesis());
    }
}
