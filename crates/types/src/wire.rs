//! Wire-size accounting.
//!
//! The simulator charges network transmission and per-byte CPU costs based
//! on an explicit estimate of each message's serialized size, mirroring the
//! paper's protobuf encoding: 8-byte keys, 8-byte timestamps, 8-byte ROT
//! ids, 8 bytes per vector entry, plus a fixed per-message header.

/// Fixed per-message envelope overhead (framing, type tag, addresses).
pub const MSG_HEADER: usize = 24;
/// Serialized size of a key.
pub const KEY: usize = 8;
/// Serialized size of a timestamp.
pub const TS: usize = 8;
/// Serialized size of a ROT (transaction) id — the paper uses 8 bytes per
/// ROT id when estimating readers-check traffic (~7 KB for 855 ids).
pub const TX_ID: usize = 8;
/// Serialized size of a client id.
pub const CLIENT_ID: usize = 4;
/// Serialized size of one dependency-vector entry.
pub const VEC_ENTRY: usize = 8;
/// Serialized size of a version id (timestamp + origin DC).
pub const VERSION_ID: usize = 9;

/// Types that know their serialized size.
pub trait WireSize {
    fn wire_size(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_check_estimate_matches_paper() {
        // The paper: 855 ROT ids ≈ 7 KB at 8 bytes per id.
        assert_eq!(855 * TX_ID, 6840);
    }
}
