//! Closed-loop operation generation for one client.

use crate::spec::WorkloadSpec;
use crate::zipf::Zipf;
use bytes::Bytes;
use contrarian_types::{Key, Op, PartitionId, Value};
use rand::rngs::SmallRng;
use rand::RngExt;
use std::sync::Arc;

/// Generates the operation stream of one closed-loop client.
///
/// * With probability `q = w·p/(1-w+w·p)` the next operation is a `PUT` to a
///   uniformly random partition, key drawn zipfian within the partition.
/// * Otherwise it is a `ROT` spanning `p` distinct partitions chosen
///   uniformly at random, reading one zipfian key per partition — exactly
///   the workload of Section 5.2.
///
/// Values are a shared `Bytes` buffer of the configured size (cloning is a
/// refcount bump, mirroring scatter-gather writes of a constant-size
/// payload).
#[derive(Clone, Debug)]
pub struct ClientDriver {
    spec: WorkloadSpec,
    zipf: Arc<Zipf>,
    n_partitions: u16,
    value: Value,
    put_prob: f64,
    /// Scratch permutation for sampling distinct partitions.
    scratch: Vec<u16>,
}

impl ClientDriver {
    /// `zipf` must be built over `keys_per_partition`; it is shared across
    /// clients because constructing it is `O(keys)`.
    pub fn new(spec: WorkloadSpec, zipf: Arc<Zipf>, n_partitions: u16) -> Self {
        assert!(spec.rot_size >= 1);
        assert!(
            spec.rot_size <= n_partitions,
            "a ROT spans at most all partitions (p={} > N={})",
            spec.rot_size,
            n_partitions
        );
        let put_prob = spec.put_probability();
        let value = Bytes::from(vec![0xABu8; spec.value_size]);
        let scratch = (0..n_partitions).collect();
        ClientDriver {
            spec,
            zipf,
            n_partitions,
            value,
            put_prob,
            scratch,
        }
    }

    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Draws the next operation.
    pub fn next_op(&mut self, rng: &mut SmallRng) -> Op {
        if rng.random::<f64>() < self.put_prob {
            let p = PartitionId(rng.random_range(0..self.n_partitions));
            Op::Put(self.key_in(p, rng), self.value.clone())
        } else {
            let p = self.spec.rot_size as usize;
            // Partial Fisher-Yates over the scratch permutation: the first
            // `p` entries become a uniform sample of distinct partitions.
            for i in 0..p {
                let j = rng.random_range(i..self.scratch.len());
                self.scratch.swap(i, j);
            }
            let mut keys = Vec::with_capacity(p);
            for i in 0..p {
                keys.push(self.key_in(PartitionId(self.scratch[i]), rng));
            }
            Op::Rot(keys)
        }
    }

    fn key_in(&self, p: PartitionId, rng: &mut SmallRng) -> Key {
        let local = self.zipf.sample(rng);
        Key::compose(p, local, self.n_partitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn driver(spec: WorkloadSpec, n: u16) -> ClientDriver {
        let zipf = Arc::new(Zipf::new(100, spec.zipf_theta));
        ClientDriver::new(spec, zipf, n)
    }

    #[test]
    fn rot_spans_distinct_partitions() {
        let mut d = driver(WorkloadSpec::paper_default().with_rot_size(4), 8);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..500 {
            if let Op::Rot(keys) = d.next_op(&mut rng) {
                assert_eq!(keys.len(), 4);
                let mut parts: Vec<u16> = keys.iter().map(|k| k.partition(8).0).collect();
                parts.sort_unstable();
                parts.dedup();
                assert_eq!(parts.len(), 4, "partitions must be distinct");
            }
        }
    }

    #[test]
    fn rot_can_span_all_partitions() {
        let mut d = driver(WorkloadSpec::paper_default().with_rot_size(8), 8);
        let mut rng = SmallRng::seed_from_u64(2);
        let rot = loop {
            if let Op::Rot(keys) = d.next_op(&mut rng) {
                break keys;
            }
        };
        let mut parts: Vec<u16> = rot.iter().map(|k| k.partition(8).0).collect();
        parts.sort_unstable();
        assert_eq!(parts, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn realized_write_ratio_matches_w() {
        let spec = WorkloadSpec::paper_default(); // w = 0.05, p = 4
        let mut d = driver(spec, 16);
        let mut rng = SmallRng::seed_from_u64(3);
        let (mut puts, mut reads) = (0u64, 0u64);
        for _ in 0..200_000 {
            match d.next_op(&mut rng) {
                Op::Put(..) => puts += 1,
                Op::Rot(keys) => reads += keys.len() as u64,
            }
        }
        let w = puts as f64 / (puts + reads) as f64;
        assert!((w - 0.05).abs() < 0.004, "realized w = {w}");
    }

    #[test]
    fn keys_respect_partition_layout() {
        let mut d = driver(WorkloadSpec::paper_default(), 8);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..200 {
            match d.next_op(&mut rng) {
                Op::Put(k, v) => {
                    assert!(k.local_index(8) < 100);
                    assert_eq!(v.len(), 8);
                }
                Op::Rot(keys) => {
                    for k in keys {
                        assert!(k.local_index(8) < 100);
                    }
                }
            }
        }
    }

    #[test]
    fn skewed_keys_concentrate() {
        let mut d = driver(WorkloadSpec::paper_default().with_zipf(0.99), 4);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut rank0 = 0u64;
        let mut total = 0u64;
        for _ in 0..20_000 {
            if let Op::Rot(keys) = d.next_op(&mut rng) {
                for k in keys {
                    total += 1;
                    if k.local_index(4) == 0 {
                        rank0 += 1;
                    }
                }
            }
        }
        assert!(rank0 as f64 / total as f64 > 0.1, "hot key share too low");
    }

    #[test]
    #[should_panic(expected = "at most all partitions")]
    fn rot_size_larger_than_cluster_is_rejected() {
        driver(WorkloadSpec::paper_default().with_rot_size(9), 8);
    }
}
