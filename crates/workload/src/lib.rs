//! YCSB-style workload generation (Table 1 of the paper).
//!
//! Workloads are parameterized by:
//!
//! * **w** — write/read ratio, `w = #PUT / (#PUT + #reads)`, where a ROT of
//!   `k` keys counts as `k` reads (values 0.01 / 0.05 / 0.1);
//! * **p** — ROT size: number of partitions spanned, one key read per
//!   partition (4 / 8 / 24);
//! * **b** — value size in bytes (8 / 128 / 2048); keys are 8 bytes;
//! * **z** — zipfian skew of key popularity *within* a partition
//!   (0 / 0.8 / 0.99).
//!
//! Two load models share those knobs:
//!
//! * **Closed-loop** (the paper's experiments): each client issues its next
//!   operation as soon as the previous one completes; load is varied by
//!   the number of clients.
//! * **Open-loop** ([`openloop`], saturation experiments): every logical
//!   session is an independent Poisson arrival process; millions of
//!   sessions are multiplexed onto a bounded pool of driver actors, and
//!   latency clocks start at the *scheduled* arrival time so driver
//!   queueing delay is measured instead of omitted (no coordinated
//!   omission). Load is varied by the offered rate ([`OpenLoopSpec`]).

pub mod driver;
pub mod openloop;
pub mod source;
pub mod spec;
pub mod zipf;

pub use driver::ClientDriver;
pub use openloop::OpenLoopDriver;
pub use source::{Draw, OpSource};
pub use spec::{OpenLoopSpec, WorkloadSpec};
pub use zipf::Zipf;
