//! Open-loop load generation: Poisson arrivals over the Zipf key
//! population, millions of logical sessions per driver actor.
//!
//! ## Model
//!
//! A closed-loop client ([`crate::ClientDriver`] behind
//! [`crate::OpSource::Closed`]) issues its next operation the instant the
//! previous one completes, so offered load is capped by round-trip latency
//! — it physically cannot saturate a fast backend. The open-loop driver
//! inverts that: every *logical session* has its own Poisson arrival
//! process (exponential inter-arrival times at the configured per-session
//! rate), and arrivals fire whether or not earlier operations finished.
//!
//! One [`OpenLoopDriver`] multiplexes a shard of sessions onto a single
//! driver actor. It keeps a pending-arrival calendar (a min-heap of
//! `(due, session)` pairs, ~16 bytes per session, so a million sessions
//! across a bounded actor pool is cheap) and answers
//! [`draw`](OpenLoopDriver::draw) with either the next *due* operation —
//! tagged with its scheduled arrival time — or the instant the actor
//! should wake up next.
//!
//! ## Coordinated omission
//!
//! The scheduled arrival time (`intended`) is the latency clock's start,
//! *not* the moment the actor got around to sending the request. When the
//! actor (or the backend behind it) falls behind, overdue arrivals drain
//! back-to-back and each one's measured latency includes the full time it
//! spent queued in the driver — the saturation signal coordinated-omission
//! -blind drivers silently discard. See
//! `contrarian_runtime::metrics::Histogram::record_corrected` for the
//! complementary correction applied to closed-loop histograms.
//!
//! ## Determinism
//!
//! All randomness (inter-arrival gaps and the operation mix) is drawn from
//! the calling actor's RNG stream in calendar order. Calendar keys
//! `(due, session)` are unique, so heap pops are a total order and a fixed
//! seed yields the identical arrival sequence on every engine — arrivals
//! are ordinary timer events under simulation, preserving bit-identical
//! histories across `CONTRARIAN_SCHED=heap/calendar/sharded`.

use crate::driver::ClientDriver;
use crate::source::Draw;
use rand::rngs::SmallRng;
use rand::RngExt;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Poisson arrival schedule for one actor's shard of logical sessions.
pub struct OpenLoopDriver {
    gen: ClientDriver,
    sessions: u32,
    /// Mean inter-arrival gap per session, ns.
    mean_gap_ns: f64,
    /// Min-heap of pending arrivals: `(due time, session index)`.
    calendar: BinaryHeap<Reverse<(u64, u32)>>,
    /// First `draw` primes the calendar (the actor's RNG only exists once
    /// the runtime is driving it, and `now` anchors the schedule).
    primed: bool,
    scheduled: u64,
}

impl OpenLoopDriver {
    /// `sessions` logical sessions, each an independent Poisson process at
    /// `session_rate_ops_per_sec`; operations drawn from `gen`'s mix.
    pub fn new(gen: ClientDriver, sessions: u32, session_rate_ops_per_sec: f64) -> Self {
        assert!(sessions > 0, "an open-loop driver needs at least 1 session");
        assert!(
            session_rate_ops_per_sec > 0.0 && session_rate_ops_per_sec.is_finite(),
            "per-session rate must be positive and finite"
        );
        OpenLoopDriver {
            gen,
            sessions,
            mean_gap_ns: 1e9 / session_rate_ops_per_sec,
            calendar: BinaryHeap::new(),
            primed: false,
            scheduled: 0,
        }
    }

    pub fn sessions(&self) -> u32 {
        self.sessions
    }

    /// Total arrivals scheduled so far (primed initial arrivals excluded).
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Inverse-CDF exponential sample, mean `mean_gap_ns`, clamped to ≥1 ns
    /// so a session never schedules two arrivals at the same instant.
    fn exp_gap(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.random();
        // `u ∈ [0,1)` so `1-u ∈ (0,1]` and the log is finite and ≤ 0.
        let gap = -(1.0 - u).ln() * self.mean_gap_ns;
        (gap.ceil() as u64).max(1)
    }

    fn prime(&mut self, now: u64, rng: &mut SmallRng) {
        self.calendar.reserve(self.sessions as usize);
        for s in 0..self.sessions {
            let due = now + self.exp_gap(rng);
            self.calendar.push(Reverse((due, s)));
        }
        self.primed = true;
    }

    /// The next due arrival at time `now`, or when to wake up.
    ///
    /// Overdue arrivals (scheduled while the actor was busy) are returned
    /// immediately, oldest first, each carrying its original scheduled
    /// time as `intended`.
    pub fn draw(&mut self, now: u64, rng: &mut SmallRng) -> Draw {
        if !self.primed {
            self.prime(now, rng);
        }
        match self.calendar.peek() {
            Some(&Reverse((due, session))) if due <= now => {
                self.calendar.pop();
                // The arrival process is independent of service: the next
                // arrival is anchored at the scheduled time, not at `now`.
                let next = due + self.exp_gap(rng);
                self.calendar.push(Reverse((next, session)));
                self.scheduled += 1;
                Draw::Op {
                    op: self.gen.next_op(rng),
                    intended: due,
                }
            }
            Some(&Reverse((due, _))) => Draw::Wait { due },
            None => Draw::Idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use crate::zipf::Zipf;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn driver(sessions: u32, rate: f64) -> OpenLoopDriver {
        let gen = ClientDriver::new(
            WorkloadSpec::paper_default().with_rot_size(2),
            Arc::new(Zipf::new(64, 0.99)),
            4,
        );
        OpenLoopDriver::new(gen, sessions, rate)
    }

    /// Drains everything due by `now`, returning the intended times.
    fn drain_due(d: &mut OpenLoopDriver, now: u64, rng: &mut SmallRng) -> Vec<u64> {
        let mut out = Vec::new();
        loop {
            match d.draw(now, rng) {
                Draw::Op { intended, .. } => out.push(intended),
                _ => return out,
            }
        }
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut d = driver(16, 1000.0);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut times = Vec::new();
            for step in 1..=50u64 {
                times.extend(drain_due(&mut d, step * 1_000_000, &mut rng));
            }
            times
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn intended_times_are_nondecreasing_and_at_most_now() {
        let mut d = driver(32, 5000.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut last = 0;
        for step in 1..=100u64 {
            let now = step * 500_000;
            for t in drain_due(&mut d, now, &mut rng) {
                assert!(t >= last, "arrivals must drain oldest first");
                assert!(t <= now, "only due arrivals are returned");
                last = t;
            }
        }
    }

    #[test]
    fn wait_names_the_next_due_instant() {
        let mut d = driver(4, 100.0);
        let mut rng = SmallRng::seed_from_u64(9);
        // Prime at t=0; nothing can be due yet.
        match d.draw(0, &mut rng) {
            Draw::Wait { due } => {
                assert!(due > 0);
                // Advancing exactly to `due` yields the op with that
                // intended time.
                match d.draw(due, &mut rng) {
                    Draw::Op { intended, .. } => assert_eq!(intended, due),
                    other => panic!("expected due op, got {other:?}"),
                }
            }
            other => panic!("expected wait, got {other:?}"),
        }
    }

    #[test]
    fn overdue_arrivals_backfill_with_original_intended_times() {
        let mut d = driver(8, 10_000.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = d.draw(0, &mut rng); // prime
                                     // Simulate a long stall: everything due in 10ms drains at once,
                                     // each with its scheduled (not current) timestamp.
        let drained = drain_due(&mut d, 10_000_000, &mut rng);
        assert!(drained.len() > 10, "a stalled actor has a backlog");
        assert!(drained.iter().all(|&t| t <= 10_000_000));
        assert!(
            drained.windows(2).all(|w| w[0] <= w[1]),
            "backlog drains in schedule order"
        );
    }

    #[test]
    fn mean_rate_is_realized() {
        // 64 sessions × 1000 ops/s for 2 virtual seconds ≈ 128k arrivals.
        let mut d = driver(64, 1000.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut n = 0u64;
        for step in 1..=2000u64 {
            n += drain_due(&mut d, step * 1_000_000, &mut rng).len() as u64;
        }
        let expected = 128_000.0;
        assert!(
            (n as f64 - expected).abs() / expected < 0.05,
            "arrivals {n} too far from {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1 session")]
    fn zero_sessions_rejected() {
        driver(0, 1.0);
    }
}
