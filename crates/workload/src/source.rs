//! Pluggable operation sources for protocol clients.

use crate::driver::ClientDriver;
use crate::openloop::OpenLoopDriver;
use contrarian_types::Op;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// What a client should do next, as answered by [`OpSource::draw`].
#[derive(Debug)]
pub enum Draw {
    /// Issue `op` now. `intended` is the operation's scheduled arrival
    /// time: closed-loop and queue sources arrive "now", open-loop sources
    /// carry the Poisson schedule's timestamp so latency measured from
    /// `intended` includes driver queueing delay (coordinated omission).
    Op { op: Op, intended: u64 },
    /// Nothing due yet: arm a wake-up timer for `due`.
    Wait { due: u64 },
    /// Nothing to issue; an injected op will wake the client.
    Idle,
}

/// Where a protocol client gets its next operation from.
pub enum OpSource {
    /// Closed-loop generation (the paper's experiments): always yields an
    /// operation, the next one the instant the previous completes.
    Closed(ClientDriver),
    /// Open-loop generation (saturation experiments): a Poisson arrival
    /// calendar over a shard of logical sessions.
    Open(OpenLoopDriver),
    /// An externally fed queue (interactive facade): yields whatever has
    /// been injected, if anything.
    Queue(Arc<Mutex<VecDeque<Op>>>),
}

impl OpSource {
    pub fn closed(driver: ClientDriver) -> Self {
        OpSource::Closed(driver)
    }

    pub fn open(driver: OpenLoopDriver) -> Self {
        OpSource::Open(driver)
    }

    pub fn queue() -> (Self, Arc<Mutex<VecDeque<Op>>>) {
        let q = Arc::new(Mutex::new(VecDeque::new()));
        (OpSource::Queue(q.clone()), q)
    }

    /// What to do at time `now`: issue, sleep, or idle.
    pub fn draw(&mut self, now: u64, rng: &mut SmallRng) -> Draw {
        match self {
            OpSource::Closed(d) => Draw::Op {
                op: d.next_op(rng),
                intended: now,
            },
            OpSource::Open(d) => d.draw(now, rng),
            OpSource::Queue(q) => match q.lock().pop_front() {
                Some(op) => Draw::Op { op, intended: now },
                None => Draw::Idle,
            },
        }
    }

    pub fn is_closed_loop(&self) -> bool {
        matches!(self, OpSource::Closed(_))
    }

    /// Load-generating sources (closed- and open-loop) go quiet when the
    /// harness stops the run; queue sources always drain what was injected.
    pub fn is_load_generating(&self) -> bool {
        !matches!(self, OpSource::Queue(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use crate::zipf::Zipf;
    use contrarian_types::Key;
    use rand::SeedableRng;

    fn driver() -> ClientDriver {
        ClientDriver::new(
            WorkloadSpec::paper_default(),
            Arc::new(Zipf::new(10, 0.99)),
            8,
        )
    }

    #[test]
    fn closed_source_always_yields_at_now() {
        let mut s = OpSource::closed(driver());
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(s.is_closed_loop());
        assert!(s.is_load_generating());
        for now in 0..10u64 {
            match s.draw(now, &mut rng) {
                Draw::Op { intended, .. } => assert_eq!(intended, now),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn queue_source_yields_injected_ops_in_order() {
        let (mut s, q) = OpSource::queue();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(!s.is_load_generating());
        assert!(matches!(s.draw(5, &mut rng), Draw::Idle));
        q.lock().push_back(Op::Rot(vec![Key(1)]));
        q.lock().push_back(Op::Rot(vec![Key(2)]));
        match s.draw(6, &mut rng) {
            Draw::Op {
                op: Op::Rot(keys),
                intended,
            } => {
                assert_eq!(keys[0], Key(1));
                assert_eq!(intended, 6);
            }
            other => panic!("unexpected {other:?}"),
        }
        match s.draw(7, &mut rng) {
            Draw::Op {
                op: Op::Rot(keys), ..
            } => assert_eq!(keys[0], Key(2)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(s.draw(8, &mut rng), Draw::Idle));
    }

    #[test]
    fn open_source_waits_then_fires() {
        let ol = OpenLoopDriver::new(driver(), 4, 1000.0);
        let mut s = OpSource::open(ol);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(s.is_load_generating());
        assert!(!s.is_closed_loop());
        let due = match s.draw(0, &mut rng) {
            Draw::Wait { due } => due,
            other => panic!("unexpected {other:?}"),
        };
        match s.draw(due, &mut rng) {
            Draw::Op { intended, .. } => assert_eq!(intended, due),
            other => panic!("unexpected {other:?}"),
        }
    }
}
