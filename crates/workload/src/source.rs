//! Pluggable operation sources for protocol clients.

use crate::driver::ClientDriver;
use contrarian_types::Op;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// Where a protocol client gets its next operation from.
pub enum OpSource {
    /// Closed-loop generation (performance experiments): `next` always
    /// yields an operation.
    Closed(ClientDriver),
    /// An externally fed queue (interactive facade): `next` yields whatever
    /// has been injected, if anything.
    Queue(Arc<Mutex<VecDeque<Op>>>),
}

impl OpSource {
    pub fn closed(driver: ClientDriver) -> Self {
        OpSource::Closed(driver)
    }

    pub fn queue() -> (Self, Arc<Mutex<VecDeque<Op>>>) {
        let q = Arc::new(Mutex::new(VecDeque::new()));
        (OpSource::Queue(q.clone()), q)
    }

    /// The next operation to issue, or `None` if idle (queue sources only).
    pub fn next(&mut self, rng: &mut SmallRng) -> Option<Op> {
        match self {
            OpSource::Closed(d) => Some(d.next_op(rng)),
            OpSource::Queue(q) => q.lock().pop_front(),
        }
    }

    pub fn is_closed_loop(&self) -> bool {
        matches!(self, OpSource::Closed(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use crate::zipf::Zipf;
    use contrarian_types::Key;
    use rand::SeedableRng;

    #[test]
    fn closed_source_always_yields() {
        let d = ClientDriver::new(
            WorkloadSpec::paper_default(),
            Arc::new(Zipf::new(10, 0.99)),
            8,
        );
        let mut s = OpSource::closed(d);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(s.is_closed_loop());
        for _ in 0..10 {
            assert!(s.next(&mut rng).is_some());
        }
    }

    #[test]
    fn queue_source_yields_injected_ops_in_order() {
        let (mut s, q) = OpSource::queue();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(s.next(&mut rng).is_none());
        q.lock().push_back(Op::Rot(vec![Key(1)]));
        q.lock().push_back(Op::Rot(vec![Key(2)]));
        match s.next(&mut rng) {
            Some(Op::Rot(keys)) => assert_eq!(keys[0], Key(1)),
            other => panic!("unexpected {other:?}"),
        }
        match s.next(&mut rng) {
            Some(Op::Rot(keys)) => assert_eq!(keys[0], Key(2)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(s.next(&mut rng).is_none());
    }
}
