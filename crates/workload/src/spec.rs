//! Workload parameterization (Table 1).

/// The workload parameters of Table 1. Defaults (bold in the paper):
/// `w = 0.05` (YCSB read-heavy), `p = 4`, `b = 8`, `z = 0.99`.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Write/read ratio `w = #PUT / (#PUT + #reads)`; a ROT of `k` keys
    /// counts as `k` reads.
    pub write_ratio: f64,
    /// Number of partitions spanned by a ROT (one key per partition).
    pub rot_size: u16,
    /// Value size in bytes.
    pub value_size: usize,
    /// Zipfian skew of key popularity within a partition.
    pub zipf_theta: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl WorkloadSpec {
    /// The paper's default workload.
    pub fn paper_default() -> Self {
        WorkloadSpec {
            write_ratio: 0.05,
            rot_size: 4,
            value_size: 8,
            zipf_theta: 0.99,
        }
    }

    pub fn with_write_ratio(mut self, w: f64) -> Self {
        self.write_ratio = w;
        self
    }

    pub fn with_rot_size(mut self, p: u16) -> Self {
        self.rot_size = p;
        self
    }

    pub fn with_value_size(mut self, b: usize) -> Self {
        self.value_size = b;
        self
    }

    pub fn with_zipf(mut self, z: f64) -> Self {
        self.zipf_theta = z;
        self
    }

    /// Probability that the next operation is a PUT.
    ///
    /// With PUT probability `q` per operation, a client produces `q` PUTs
    /// and `(1-q)·p` reads per operation in expectation, so
    /// `w = q / (q + (1-q)·p)`, which solves to `q = w·p / (1 - w + w·p)`.
    pub fn put_probability(&self) -> f64 {
        let w = self.write_ratio;
        let p = self.rot_size as f64;
        w * p / (1.0 - w + w * p)
    }

    /// The full Table 1 parameter grid (for documentation binaries).
    pub fn table1_grid() -> (Vec<f64>, Vec<u16>, Vec<usize>, Vec<f64>) {
        (
            vec![0.01, 0.05, 0.1],
            vec![4, 8, 24],
            vec![8, 128, 2048],
            vec![0.99, 0.8, 0.0],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_default() {
        let s = WorkloadSpec::default();
        assert_eq!(s.write_ratio, 0.05);
        assert_eq!(s.rot_size, 4);
        assert_eq!(s.value_size, 8);
        assert_eq!(s.zipf_theta, 0.99);
    }

    #[test]
    fn put_probability_realizes_write_ratio() {
        // For any (w, p): q/(q + (1-q)p) must equal w.
        for w in [0.01, 0.05, 0.1, 0.5] {
            for p in [1u16, 4, 8, 24] {
                let s = WorkloadSpec::paper_default()
                    .with_write_ratio(w)
                    .with_rot_size(p);
                let q = s.put_probability();
                let realized = q / (q + (1.0 - q) * p as f64);
                assert!((realized - w).abs() < 1e-12, "w={w} p={p}");
            }
        }
    }

    #[test]
    fn put_probability_default_value() {
        // w=0.05, p=4 → q = 0.2/1.15 ≈ 0.1739.
        let q = WorkloadSpec::paper_default().put_probability();
        assert!((q - 0.17391304).abs() < 1e-6);
    }

    #[test]
    fn builders() {
        let s = WorkloadSpec::paper_default()
            .with_value_size(2048)
            .with_zipf(0.8);
        assert_eq!(s.value_size, 2048);
        assert_eq!(s.zipf_theta, 0.8);
    }
}
