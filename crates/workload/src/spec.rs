//! Workload parameterization (Table 1).

/// The workload parameters of Table 1. Defaults (bold in the paper):
/// `w = 0.05` (YCSB read-heavy), `p = 4`, `b = 8`, `z = 0.99`.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Write/read ratio `w = #PUT / (#PUT + #reads)`; a ROT of `k` keys
    /// counts as `k` reads.
    pub write_ratio: f64,
    /// Number of partitions spanned by a ROT (one key per partition).
    pub rot_size: u16,
    /// Value size in bytes.
    pub value_size: usize,
    /// Zipfian skew of key popularity within a partition.
    pub zipf_theta: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl WorkloadSpec {
    /// The paper's default workload.
    pub fn paper_default() -> Self {
        WorkloadSpec {
            write_ratio: 0.05,
            rot_size: 4,
            value_size: 8,
            zipf_theta: 0.99,
        }
    }

    pub fn with_write_ratio(mut self, w: f64) -> Self {
        self.write_ratio = w;
        self
    }

    pub fn with_rot_size(mut self, p: u16) -> Self {
        self.rot_size = p;
        self
    }

    pub fn with_value_size(mut self, b: usize) -> Self {
        self.value_size = b;
        self
    }

    pub fn with_zipf(mut self, z: f64) -> Self {
        self.zipf_theta = z;
        self
    }

    /// Probability that the next operation is a PUT.
    ///
    /// With PUT probability `q` per operation, a client produces `q` PUTs
    /// and `(1-q)·p` reads per operation in expectation, so
    /// `w = q / (q + (1-q)·p)`, which solves to `q = w·p / (1 - w + w·p)`.
    pub fn put_probability(&self) -> f64 {
        let w = self.write_ratio;
        let p = self.rot_size as f64;
        w * p / (1.0 - w + w * p)
    }

    /// The full Table 1 parameter grid (for documentation binaries).
    pub fn table1_grid() -> (Vec<f64>, Vec<u16>, Vec<usize>, Vec<f64>) {
        (
            vec![0.01, 0.05, 0.1],
            vec![4, 8, 24],
            vec![8, 128, 2048],
            vec![0.99, 0.8, 0.0],
        )
    }
}

/// Parameters of one open-loop (saturation) load: how many logical
/// sessions, at what aggregate offered rate, multiplexed onto how many
/// driver actors per DC. See [`crate::openloop`] for the model.
#[derive(Clone, Debug)]
pub struct OpenLoopSpec {
    /// The operation mix (Table 1 knobs) every session draws from.
    pub workload: WorkloadSpec,
    /// Total logical sessions across the whole cluster.
    pub sessions: u64,
    /// Aggregate offered rate across all sessions, operations per second.
    pub offered_ops_per_sec: f64,
    /// Bounded driver-actor pool size per DC; sessions are sharded evenly
    /// across `n_dcs × actors_per_dc` actors.
    pub actors_per_dc: u16,
}

impl OpenLoopSpec {
    pub fn new(workload: WorkloadSpec, sessions: u64, offered_ops_per_sec: f64) -> Self {
        assert!(sessions > 0);
        assert!(offered_ops_per_sec > 0.0);
        OpenLoopSpec {
            workload,
            sessions,
            offered_ops_per_sec,
            actors_per_dc: 8,
        }
    }

    pub fn with_actors_per_dc(mut self, n: u16) -> Self {
        assert!(n > 0);
        self.actors_per_dc = n;
        self
    }

    pub fn with_offered(mut self, ops_per_sec: f64) -> Self {
        assert!(ops_per_sec > 0.0);
        self.offered_ops_per_sec = ops_per_sec;
        self
    }

    pub fn with_sessions(mut self, sessions: u64) -> Self {
        assert!(sessions > 0);
        self.sessions = sessions;
        self
    }

    /// Per-session Poisson rate: the aggregate rate split evenly.
    pub fn session_rate(&self) -> f64 {
        self.offered_ops_per_sec / self.sessions as f64
    }

    /// Number of sessions owned by actor `i` of `total`: an even split
    /// with the remainder going to the lowest-indexed actors, so the
    /// shard sizes differ by at most one.
    pub fn sessions_for(&self, i: usize, total: usize) -> u64 {
        debug_assert!(i < total);
        let (total, i) = (total as u64, i as u64);
        self.sessions / total + u64::from(i < self.sessions % total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_default() {
        let s = WorkloadSpec::default();
        assert_eq!(s.write_ratio, 0.05);
        assert_eq!(s.rot_size, 4);
        assert_eq!(s.value_size, 8);
        assert_eq!(s.zipf_theta, 0.99);
    }

    #[test]
    fn put_probability_realizes_write_ratio() {
        // For any (w, p): q/(q + (1-q)p) must equal w.
        for w in [0.01, 0.05, 0.1, 0.5] {
            for p in [1u16, 4, 8, 24] {
                let s = WorkloadSpec::paper_default()
                    .with_write_ratio(w)
                    .with_rot_size(p);
                let q = s.put_probability();
                let realized = q / (q + (1.0 - q) * p as f64);
                assert!((realized - w).abs() < 1e-12, "w={w} p={p}");
            }
        }
    }

    #[test]
    fn put_probability_default_value() {
        // w=0.05, p=4 → q = 0.2/1.15 ≈ 0.1739.
        let q = WorkloadSpec::paper_default().put_probability();
        assert!((q - 0.17391304).abs() < 1e-6);
    }

    #[test]
    fn builders() {
        let s = WorkloadSpec::paper_default()
            .with_value_size(2048)
            .with_zipf(0.8);
        assert_eq!(s.value_size, 2048);
        assert_eq!(s.zipf_theta, 0.8);
    }

    #[test]
    fn open_loop_session_sharding_is_even_and_exhaustive() {
        let spec = OpenLoopSpec::new(WorkloadSpec::paper_default(), 1_000_003, 50_000.0);
        let total = 24;
        let shards: Vec<u64> = (0..total).map(|i| spec.sessions_for(i, total)).collect();
        assert_eq!(shards.iter().sum::<u64>(), 1_000_003);
        let (min, max) = (shards.iter().min().unwrap(), shards.iter().max().unwrap());
        assert!(max - min <= 1, "shards differ by at most one session");
    }

    #[test]
    fn open_loop_session_rate_splits_offered_rate() {
        let spec = OpenLoopSpec::new(WorkloadSpec::paper_default(), 1_000_000, 250_000.0)
            .with_actors_per_dc(16);
        assert!((spec.session_rate() - 0.25).abs() < 1e-12);
        assert_eq!(spec.actors_per_dc, 16);
    }
}
