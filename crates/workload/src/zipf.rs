//! Zipfian key-popularity distribution, YCSB style (Gray et al.,
//! "Quickly Generating Billion-Record Synthetic Databases", SIGMOD 1994).

use rand::rngs::SmallRng;
use rand::RngExt;

/// A zipfian sampler over ranks `0..n` where rank `i` has probability
/// proportional to `1/(i+1)^θ`. `θ = 0` degenerates to uniform.
///
/// Constructing a sampler computes `ζ(n, θ)` in `O(n)`; samplers are
/// immutable and shared across all clients of a run (`Arc<Zipf>`).
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        if theta == 0.0 {
            return Zipf {
                n,
                theta,
                alpha: 0.0,
                zetan: 0.0,
                eta: 0.0,
            };
        }
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `0..n`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        if self.theta == 0.0 {
            return rng.random_range(0..self.n);
        }
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The probability of rank `i` under the exact zipfian law (test and
    /// analysis helper; the sampler itself approximates this law).
    pub fn prob(&self, i: u64) -> f64 {
        if self.theta == 0.0 {
            1.0 / self.n as f64
        } else {
            1.0 / ((i + 1) as f64).powf(self.theta) / self.zetan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn freq(z: &Zipf, samples: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u64; z.n() as usize];
        for _ in 0..samples {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let counts = freq(&z, 100_000, 2);
        for c in counts {
            let p = c as f64 / 100_000.0;
            assert!((p - 0.1).abs() < 0.01, "uniform bucket off: {p}");
        }
    }

    #[test]
    fn skew_orders_popularity() {
        let z = Zipf::new(100, 0.99);
        let counts = freq(&z, 200_000, 3);
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[50]);
        // Hot key takes a large share under z=0.99.
        assert!(counts[0] as f64 / 200_000.0 > 0.1);
    }

    #[test]
    fn empirical_matches_exact_law() {
        let z = Zipf::new(50, 0.8);
        let counts = freq(&z, 400_000, 4);
        for i in [0u64, 1, 5, 20] {
            let emp = counts[i as usize] as f64 / 400_000.0;
            let exact = z.prob(i);
            assert!(
                (emp - exact).abs() / exact < 0.15,
                "rank {i}: empirical {emp} vs exact {exact}"
            );
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        for theta in [0.0, 0.8, 0.99] {
            let z = Zipf::new(200, theta);
            let total: f64 = (0..200).map(|i| z.prob(i)).sum();
            assert!((total - 1.0).abs() < 1e-9, "theta {theta}: sum {total}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(1000, 0.99);
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn single_element_domain() {
        let z = Zipf::new(1, 0.99);
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
