//! Geo-replication: two data centers, asynchronous multi-master
//! replication, remote visibility via the Global Stable Snapshot.
//!
//! ```bash
//! cargo run --example geo_replication
//! ```
//!
//! Runs a 2-DC Contrarian cluster under closed-loop load, then inspects:
//! * convergence — after quiescing, every partition pair holds identical
//!   last-writer-wins heads;
//! * remote visibility lag — how far each DC's GSS trails behind.

use contrarian::core_protocol::Contrarian;
use contrarian::protocol::{build_cluster, ClusterParams};
use contrarian::sim::cost::CostModel;
use contrarian::types::{Addr, ClusterConfig, DcId, PartitionId};
use contrarian::workload::WorkloadSpec;

fn main() {
    let cfg = ClusterConfig::small().with_dcs(2).with_partitions(4);
    let params = ClusterParams {
        cfg: cfg.clone(),
        cost: CostModel::functional(),
        workload: WorkloadSpec::paper_default()
            .with_rot_size(2)
            .with_write_ratio(0.2),
        clients_per_dc: 4,
        seed: 2026,
    };
    let mut sim = build_cluster::<Contrarian>(&params);
    sim.start();
    sim.metrics_mut().enabled = true;

    // 200 virtual milliseconds of load.
    sim.run_until(200_000_000);
    let m = sim.metrics();
    println!(
        "after 200 ms: {} ROTs, {} PUTs completed",
        m.rots_done, m.puts_done
    );

    // GSS lag while running: each partition's remote entry vs its own clock.
    for dc in 0..2u8 {
        let a = Addr::server(DcId(dc), PartitionId(0));
        let server = sim.actor(a).as_server().unwrap();
        println!("  {a}: gss={} vv={}", server.gss(), server.vv());
    }

    // Quiesce: stop clients, drain replication, compare replica heads.
    sim.set_stopped(true);
    sim.run_to_quiescence(10_000_000_000);

    let mut keys_checked = 0;
    for p in 0..4u16 {
        let s0 = sim.actor(Addr::server(DcId(0), PartitionId(p)));
        let s1 = sim.actor(Addr::server(DcId(1), PartitionId(p)));
        let (a, b) = (
            s0.as_server().unwrap().store(),
            s1.as_server().unwrap().store(),
        );
        for (k, chain) in a.iter() {
            let ha = chain.head().unwrap().vid;
            let hb = b.latest(*k).expect("replica missing key").vid;
            assert_eq!(ha, hb, "replicas diverged on {k}");
            keys_checked += 1;
        }
    }
    println!("converged: {keys_checked} keys have identical LWW heads in both DCs");
}
