//! A miniature of the paper's headline experiment (Figure 5): Contrarian vs
//! the "latency-optimal" CC-LO under increasing load, on a scaled-down
//! cluster so it completes in seconds.
//!
//! ```bash
//! cargo run --release --example latency_comparison
//! ```
//!
//! Watch for the paper's counterintuitive result: CC-LO's one-round ROTs win
//! only at trivial load; as load grows, the readers check's write-side cost
//! congests the servers and CC-LO loses on *read* latency too.

use contrarian::harness::experiment::{run_experiment, ExperimentConfig, Protocol};
use contrarian::harness::table;
use contrarian::sim::cost::CostModel;
use contrarian::sim::SchedKind;
use contrarian::types::ClusterConfig;
use contrarian::workload::WorkloadSpec;

fn main() {
    let mut cluster = ClusterConfig::paper_default().with_partitions(8);
    cluster.keys_per_partition = 100_000;

    let mut rows = Vec::new();
    for protocol in [Protocol::Contrarian, Protocol::CcLo] {
        for clients in [8u16, 32, 64, 96] {
            let cfg = ExperimentConfig {
                protocol,
                cluster: cluster.clone(),
                workload: WorkloadSpec::paper_default(),
                clients_per_dc: clients,
                warmup_ns: 100_000_000,
                measure_ns: 300_000_000,
                seed: 1,
                cost: CostModel::calibrated(),
                record: false,
                sched: SchedKind::from_env(),
                shard_groups: None,
                lookahead: Default::default(),
            };
            let r = run_experiment(&cfg);
            rows.push(vec![
                protocol.label().to_string(),
                clients.to_string(),
                table::f1(r.throughput_kops),
                table::f3(r.avg_rot_ms),
                table::f3(r.p99_rot_ms),
                table::f3(r.avg_put_ms),
            ]);
        }
    }
    println!(
        "{}",
        table::render(
            &[
                "system",
                "clients",
                "tput Kops/s",
                "ROT avg ms",
                "ROT p99 ms",
                "PUT avg ms"
            ],
            &rows
        )
    );
    println!(
        "CC-LO starts ahead on ROT latency and ends behind — the write-side cost of\n\
         latency \"optimality\" (readers checks) congests every server."
    );
}
