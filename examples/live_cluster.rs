//! The same protocol state machines on real threads: a Contrarian cluster
//! where every server and client is an OS thread and links are channels.
//!
//! ```bash
//! cargo run --release --example live_cluster
//! ```
//!
//! This is the non-simulated deployment path: the run is checked for causal
//! consistency afterwards with the same checker used for simulated runs.

use contrarian::core_protocol::{Client, Node, Server};
use contrarian::clock::PhysicalClockModel;
use contrarian::harness::check_causal;
use contrarian::transport::LiveCluster;
use contrarian::types::{Addr, ClusterConfig, DcId, PartitionId};
use contrarian::workload::{ClientDriver, OpSource, WorkloadSpec, Zipf};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let cfg = ClusterConfig::small();
    let workload = WorkloadSpec::paper_default().with_rot_size(2);
    let zipf = Arc::new(Zipf::new(cfg.keys_per_partition, workload.zipf_theta));

    let mut nodes = Vec::new();
    for p in 0..cfg.n_partitions {
        let addr = Addr::server(DcId(0), PartitionId(p));
        nodes.push((addr, Node::Server(Server::new(addr, cfg.clone(), PhysicalClockModel::perfect()))));
    }
    for c in 0..6u16 {
        let addr = Addr::client(DcId(0), c);
        let driver = ClientDriver::new(workload.clone(), zipf.clone(), cfg.n_partitions);
        nodes.push((addr, Node::Client(Client::new(addr, cfg.clone(), OpSource::closed(driver)))));
    }

    println!("starting {} threads (4 servers + 6 closed-loop clients)…", nodes.len());
    let cluster = LiveCluster::start(nodes, /*recording=*/ true, 7);
    std::thread::sleep(Duration::from_millis(400));
    cluster.stop_issuing();
    std::thread::sleep(Duration::from_millis(100));
    let (_actors, _metrics, history) = cluster.shutdown();

    println!("completed {} operations on real threads", history.len());
    let report = check_causal(&history);
    println!(
        "causal checker: {} ROTs checked, {} violations",
        report.rots_checked,
        report.violations.len()
    );
    assert!(report.ok(), "violations: {:?}", report.violations);
    println!("live run is causally consistent");
}
