//! The same protocol state machines on real threads: a Contrarian cluster
//! where every server and client is an OS thread and links are channels.
//!
//! ```bash
//! cargo run --release --example live_cluster
//! ```
//!
//! This is the non-simulated deployment path: the run is checked for causal
//! consistency afterwards with the same checker used for simulated runs.

use contrarian::core_protocol::Contrarian;
use contrarian::harness::check_causal;
use contrarian::protocol::build_live_nodes;
use contrarian::transport::LiveCluster;
use contrarian::types::ClusterConfig;
use contrarian::workload::WorkloadSpec;
use std::time::Duration;

fn main() {
    let mut cfg = ClusterConfig::small();
    cfg.clock_skew_us = 0; // wall-clock runs don't simulate NTP skew
    let workload = WorkloadSpec::paper_default().with_rot_size(2);
    let nodes = build_live_nodes::<Contrarian>(&cfg, &workload, 6, 7);

    println!(
        "starting {} threads (4 servers + 6 closed-loop clients)…",
        nodes.len()
    );
    let cluster = LiveCluster::start(nodes, /*recording=*/ true, 7);
    std::thread::sleep(Duration::from_millis(400));
    cluster.stop_issuing();
    std::thread::sleep(Duration::from_millis(100));
    let (_actors, _metrics, history) = cluster.shutdown();

    println!("completed {} operations on real threads", history.len());
    let report = check_causal(&history);
    println!(
        "causal checker: {} ROTs checked, {} violations",
        report.rots_checked,
        report.violations.len()
    );
    assert!(report.ok(), "violations: {:?}", report.violations);
    println!("live run is causally consistent");
}
