//! The paper's motivating anomaly (Section 1): Alice removes Bob from the
//! access list of a photo album and then adds a photo — Bob must never see
//! the *new* photo together with the *old* permissions.
//!
//! ```bash
//! cargo run --example photo_album
//! ```
//!
//! Part 1 exercises the scenario through the embedded Contrarian store: the
//! causally consistent ROT returns a safe snapshot.
//!
//! Part 2 replays the adversarial message schedule of the paper's Figures 1
//! and 10 (E*) against (a) a straw-man "latency-optimal" protocol with no
//! readers communication, which violates causality, and (b) the real CC-LO
//! (COPS-SNOW) implementation, whose readers check blocks the anomaly.

use contrarian::api::CausalStore;
use contrarian::harness::theory::{run_cclo_scenario, run_strawman_scenario};
use contrarian::types::{ClusterConfig, Key};

fn main() {
    // --- Part 1: the album through the real store -----------------------
    let mut store = CausalStore::open(ClusterConfig::small());
    let permissions = Key(0); // partition 0
    let album = Key(1); // partition 1

    store.put(permissions, "everyone,bob".into()).unwrap();
    store.put(album, "beach.jpg".into()).unwrap();

    // Alice: remove Bob first, then add the party photo. The second PUT
    // causally depends on the first.
    store.put(permissions, "everyone".into()).unwrap();
    store.put(album, "beach.jpg,party.jpg".into()).unwrap();

    // Bob reads both keys in one ROT: a causally consistent snapshot can
    // never pair the new album with the old permissions.
    let snap = store.rot(&[permissions, album]).unwrap();
    let perms = String::from_utf8_lossy(snap[0].as_ref().unwrap()).into_owned();
    let photos = String::from_utf8_lossy(snap[1].as_ref().unwrap()).into_owned();
    println!("Bob's ROT: permissions={perms:?} album={photos:?}");
    assert!(
        !(photos.contains("party.jpg") && perms.contains("bob")),
        "anomaly: Bob saw the party photo with his old access"
    );
    store.shutdown();

    // --- Part 2: why the readers check exists ---------------------------
    println!("\nReplaying the paper's E* schedule (Figure 10):");

    let bad = run_strawman_scenario(&[0]);
    let report = bad.check();
    println!(
        "  straw-man LO protocol (no readers communicated): {} violation(s)",
        report.violations.len()
    );
    assert!(!report.ok());
    println!("    e.g. {}", report.violations[0]);

    let good = run_cclo_scenario(&[0]);
    let report = good.check();
    println!(
        "  CC-LO with readers check: {} violation(s); px→py carried {} ROT id(s)",
        report.violations.len(),
        good.transcript.len()
    );
    assert!(report.ok());

    println!("\nThe protection is real, and so is its cost — that cost is the paper's subject.");
}
