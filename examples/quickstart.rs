//! Quickstart: an embedded causally consistent key-value store.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! `CausalStore` runs a full Contrarian cluster (partitioned, coordinator-
//! based nonblocking ROTs, HLC timestamps) deterministically in-process and
//! exposes a blocking `put`/`rot` API.

use contrarian::api::CausalStore;
use contrarian::types::{ClusterConfig, Key};

fn main() {
    let mut store = CausalStore::open(ClusterConfig::small());

    // Writes go to the partition owning each key.
    store.put(Key(1), "alice".into()).unwrap();
    store.put(Key(2), "bob".into()).unwrap();
    store.put(Key(3), "carol".into()).unwrap();

    // A ROT reads a causally consistent snapshot across partitions.
    let snap = store.rot(&[Key(1), Key(2), Key(3)]).unwrap();
    for (i, v) in snap.iter().enumerate() {
        println!(
            "key {} -> {:?}",
            i + 1,
            v.as_ref().map(|b| String::from_utf8_lossy(b).into_owned())
        );
    }

    // Overwrites are causally ordered within a session: a later read never
    // observes an older value.
    store.put(Key(1), "alice-v2".into()).unwrap();
    let v = store.get(Key(1)).unwrap().unwrap();
    assert_eq!(&v[..], b"alice-v2");
    println!("key 1 after overwrite -> {}", String::from_utf8_lossy(&v));

    // Reads of keys that were never written return None (⊥).
    assert_eq!(store.get(Key(999)).unwrap(), None);
    println!("key 999 -> None (never written)");

    store.shutdown();
    println!("done");
}
