//! An embedded, synchronous causal key-value store facade.
//!
//! [`CausalStore`] runs a single-DC Contrarian cluster *deterministically in
//! process* (on the discrete-event simulator) and exposes blocking
//! `put`/`rot` calls. It exists so that examples and downstream users can
//! exercise the protocol through a plain key-value API without touching the
//! simulator directly. For a real multi-threaded deployment of the same
//! state machines see [`contrarian_transport`].

use contrarian_core::node::Node;
use contrarian_core::build::build_interactive_cluster;
use contrarian_sim::sim::Sim;
use contrarian_types::{ClusterConfig, Error, HistoryEvent, Key, Result, Value};

/// An embedded causally consistent store backed by a simulated Contrarian
/// cluster with one interactive client.
pub struct CausalStore {
    sim: Sim<Node>,
    client: contrarian_types::Addr,
    history_cursor: usize,
    put_seq: u32,
    rot_seq: u32,
    down: bool,
}

impl CausalStore {
    /// Starts a cluster with the given configuration.
    pub fn open(cfg: ClusterConfig) -> CausalStore {
        let (sim, client) = build_interactive_cluster(&cfg, 0xC0FFEE);
        CausalStore { sim, client, history_cursor: 0, put_seq: 0, rot_seq: 0, down: false }
    }

    /// Writes a new version of `key`, returning once the PUT completed.
    pub fn put(&mut self, key: Key, value: Value) -> Result<()> {
        if self.down {
            return Err(Error::ClusterDown);
        }
        let seq = self.put_seq;
        self.put_seq += 1;
        self.sim.inject_op(self.client, contrarian_types::Op::Put(key, value));
        self.wait_for(|ev| matches!(ev, HistoryEvent::PutDone { seq: s, .. } if *s == seq))?;
        Ok(())
    }

    /// Reads a causally consistent snapshot of `keys`. Entry `i` of the
    /// result is the value of `keys[i]`, or `None` if the key does not exist
    /// in the snapshot.
    pub fn rot(&mut self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        if self.down {
            return Err(Error::ClusterDown);
        }
        if keys.is_empty() {
            return Err(Error::InvalidArgument("empty ROT key set"));
        }
        let seq = self.rot_seq;
        self.rot_seq += 1;
        self.sim.inject_op(self.client, contrarian_types::Op::Rot(keys.to_vec()));
        let ev = self.wait_for(
            |ev| matches!(ev, HistoryEvent::RotDone { tx, .. } if tx.seq == seq),
        )?;
        if let HistoryEvent::RotDone { pairs, values, .. } = ev {
            // Responses arrive grouped by partition; restore request order.
            let mut out = vec![None; keys.len()];
            for (i, want) in keys.iter().enumerate() {
                for (j, (k, _)) in pairs.iter().enumerate() {
                    if k == want {
                        out[i] = values[j].clone();
                        break;
                    }
                }
            }
            Ok(out)
        } else {
            unreachable!("wait_for matched RotDone")
        }
    }

    /// Convenience single-key read (a ROT over one key).
    pub fn get(&mut self, key: Key) -> Result<Option<Value>> {
        Ok(self.rot(&[key])?.pop().flatten())
    }

    /// Shuts the cluster down. Further operations fail with `ClusterDown`.
    pub fn shutdown(&mut self) {
        self.down = true;
    }

    fn wait_for<F>(&mut self, mut pred: F) -> Result<HistoryEvent>
    where
        F: FnMut(&HistoryEvent) -> bool,
    {
        // Deterministic virtual time: run the simulation until the matching
        // completion event is recorded. 10 virtual seconds is far beyond any
        // single-op latency; reaching it means the protocol lost the op.
        let deadline = self.sim.now() + 10_000_000_000;
        while self.sim.now() < deadline {
            {
                let hist = self.sim.history();
                for i in self.history_cursor..hist.len() {
                    if pred(&hist[i]) {
                        let ev = hist[i].clone();
                        self.history_cursor = i + 1;
                        return Ok(ev);
                    }
                }
            }
            if !self.sim.step() {
                break;
            }
        }
        Err(Error::Timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut s = CausalStore::open(ClusterConfig::small());
        s.put(Key(7), Value::from_static(b"v1")).unwrap();
        assert_eq!(s.get(Key(7)).unwrap().as_deref(), Some(&b"v1"[..]));
    }

    #[test]
    fn missing_key_reads_bottom() {
        let mut s = CausalStore::open(ClusterConfig::small());
        assert_eq!(s.get(Key(42)).unwrap(), None);
    }

    #[test]
    fn rot_reads_consistent_snapshot_across_partitions() {
        let mut s = CausalStore::open(ClusterConfig::small());
        s.put(Key(0), Value::from_static(b"x0")).unwrap();
        s.put(Key(1), Value::from_static(b"y0")).unwrap();
        let snap = s.rot(&[Key(0), Key(1)]).unwrap();
        assert_eq!(snap[0].as_deref(), Some(&b"x0"[..]));
        assert_eq!(snap[1].as_deref(), Some(&b"y0"[..]));
    }

    #[test]
    fn empty_rot_is_rejected() {
        let mut s = CausalStore::open(ClusterConfig::small());
        assert!(matches!(s.rot(&[]), Err(Error::InvalidArgument(_))));
    }

    #[test]
    fn shutdown_stops_service() {
        let mut s = CausalStore::open(ClusterConfig::small());
        s.shutdown();
        assert!(matches!(s.put(Key(1), Value::new()), Err(Error::ClusterDown)));
    }

    #[test]
    fn overwrites_read_newest() {
        let mut s = CausalStore::open(ClusterConfig::small());
        for i in 0..5u8 {
            s.put(Key(3), Value::from(vec![i])).unwrap();
        }
        assert_eq!(s.get(Key(3)).unwrap().unwrap()[0], 4);
    }
}
