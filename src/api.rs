//! An embedded, synchronous causal key-value store facade.
//!
//! [`CausalStore`] runs a single-DC Contrarian cluster *deterministically in
//! process* (on the discrete-event simulator) and exposes blocking
//! `put`/`rot` calls. It exists so that examples and downstream users can
//! exercise the protocol through a plain key-value API without touching the
//! simulator directly. For a real multi-threaded deployment of the same
//! state machines see [`contrarian_transport`].

use contrarian_core::{Contrarian, Node};
use contrarian_protocol::build_interactive_cluster;
use contrarian_sim::sim::Sim;
use contrarian_types::{ClusterConfig, Error, HistoryEvent, Key, Result, Value};
use std::collections::{HashMap, VecDeque};

/// An embedded causally consistent store backed by a simulated Contrarian
/// cluster with one interactive client.
pub struct CausalStore {
    sim: Sim<Node>,
    client: contrarian_types::Addr,
    /// Completion log, drained out of the engine between steps (the
    /// engine's history buffers are per-shard; this is the facade's own
    /// append-only view with a stable cursor).
    log: Vec<HistoryEvent>,
    history_cursor: usize,
    put_seq: u32,
    rot_seq: u32,
    down: bool,
}

impl CausalStore {
    /// Starts a cluster with the given configuration.
    pub fn open(cfg: ClusterConfig) -> CausalStore {
        let (sim, client) = build_interactive_cluster::<Contrarian>(&cfg, 0xC0FFEE);
        CausalStore {
            sim,
            client,
            log: Vec::new(),
            history_cursor: 0,
            put_seq: 0,
            rot_seq: 0,
            down: false,
        }
    }

    /// Writes a new version of `key`, returning once the PUT completed.
    pub fn put(&mut self, key: Key, value: Value) -> Result<()> {
        if self.down {
            return Err(Error::ClusterDown);
        }
        let seq = self.put_seq;
        self.put_seq += 1;
        self.sim
            .inject_op(self.client, contrarian_types::Op::Put(key, value));
        self.wait_for(|ev| matches!(ev, HistoryEvent::PutDone { seq: s, .. } if *s == seq))?;
        Ok(())
    }

    /// Reads a causally consistent snapshot of `keys`. Entry `i` of the
    /// result is the value of `keys[i]`, or `None` if the key does not exist
    /// in the snapshot.
    pub fn rot(&mut self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        if self.down {
            return Err(Error::ClusterDown);
        }
        if keys.is_empty() {
            return Err(Error::InvalidArgument("empty ROT key set"));
        }
        let seq = self.rot_seq;
        self.rot_seq += 1;
        self.sim
            .inject_op(self.client, contrarian_types::Op::Rot(keys.to_vec()));
        let ev =
            self.wait_for(|ev| matches!(ev, HistoryEvent::RotDone { tx, .. } if tx.seq == seq))?;
        if let HistoryEvent::RotDone { pairs, values, .. } = ev {
            // Responses arrive grouped by partition; restore request order
            // with a key→pending-slot index built once (O(n + m) instead of
            // the old O(n·m) scan, which also silently aliased duplicate
            // request keys to the first response only).
            let mut slots: HashMap<Key, VecDeque<usize>> = HashMap::with_capacity(keys.len());
            for (i, k) in keys.iter().enumerate() {
                slots.entry(*k).or_default().push_back(i);
            }
            let mut out = vec![None; keys.len()];
            let mut first_response: HashMap<Key, usize> = HashMap::new();
            for (j, (k, _)) in pairs.iter().enumerate() {
                first_response.entry(*k).or_insert(j);
                // Each response occurrence fills the next pending slot of
                // its key, so duplicated request keys each get an answer.
                if let Some(q) = slots.get_mut(k) {
                    if let Some(i) = q.pop_front() {
                        out[i] = values[j].clone();
                    }
                }
            }
            // A backend that deduplicates reads answers each key once;
            // remaining duplicate slots alias that key's single response.
            for (k, q) in slots {
                if q.is_empty() {
                    continue;
                }
                if let Some(&j) = first_response.get(&k) {
                    for i in q {
                        out[i] = values[j].clone();
                    }
                }
            }
            Ok(out)
        } else {
            unreachable!("wait_for matched RotDone")
        }
    }

    /// Convenience single-key read (a ROT over one key).
    pub fn get(&mut self, key: Key) -> Result<Option<Value>> {
        Ok(self.rot(&[key])?.pop().flatten())
    }

    /// Shuts the cluster down. Further operations fail with `ClusterDown`.
    pub fn shutdown(&mut self) {
        self.down = true;
    }

    fn wait_for<F>(&mut self, mut pred: F) -> Result<HistoryEvent>
    where
        F: FnMut(&HistoryEvent) -> bool,
    {
        // Deterministic virtual time: run the simulation until the matching
        // completion event is recorded. 10 virtual seconds is far beyond any
        // single-op latency; reaching it means the protocol lost the op.
        // The cursor only advances past a match, so a later wait with a
        // different predicate still sees the skipped-over events.
        let deadline = self.sim.now() + 10_000_000_000;
        loop {
            self.log.extend(self.sim.drain_history());
            for i in self.history_cursor..self.log.len() {
                if pred(&self.log[i]) {
                    self.history_cursor = i + 1;
                    return Ok(self.log[i].clone());
                }
            }
            if self.sim.now() >= deadline || !self.sim.step() {
                return Err(Error::Timeout);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut s = CausalStore::open(ClusterConfig::small());
        s.put(Key(7), Value::from_static(b"v1")).unwrap();
        assert_eq!(s.get(Key(7)).unwrap().as_deref(), Some(&b"v1"[..]));
    }

    #[test]
    fn missing_key_reads_bottom() {
        let mut s = CausalStore::open(ClusterConfig::small());
        assert_eq!(s.get(Key(42)).unwrap(), None);
    }

    #[test]
    fn rot_reads_consistent_snapshot_across_partitions() {
        let mut s = CausalStore::open(ClusterConfig::small());
        s.put(Key(0), Value::from_static(b"x0")).unwrap();
        s.put(Key(1), Value::from_static(b"y0")).unwrap();
        let snap = s.rot(&[Key(0), Key(1)]).unwrap();
        assert_eq!(snap[0].as_deref(), Some(&b"x0"[..]));
        assert_eq!(snap[1].as_deref(), Some(&b"y0"[..]));
    }

    #[test]
    fn duplicate_rot_keys_each_get_the_value() {
        let mut s = CausalStore::open(ClusterConfig::small());
        s.put(Key(0), Value::from_static(b"x0")).unwrap();
        s.put(Key(1), Value::from_static(b"y0")).unwrap();
        let snap = s.rot(&[Key(0), Key(1), Key(0), Key(0)]).unwrap();
        assert_eq!(snap[0].as_deref(), Some(&b"x0"[..]));
        assert_eq!(snap[1].as_deref(), Some(&b"y0"[..]));
        assert_eq!(
            snap[2].as_deref(),
            Some(&b"x0"[..]),
            "duplicate key slot must be filled"
        );
        assert_eq!(snap[3].as_deref(), Some(&b"x0"[..]));
    }

    #[test]
    fn duplicate_rot_of_missing_key_stays_bottom() {
        let mut s = CausalStore::open(ClusterConfig::small());
        let snap = s.rot(&[Key(9), Key(9)]).unwrap();
        assert_eq!(snap, vec![None, None]);
    }

    #[test]
    fn empty_rot_is_rejected() {
        let mut s = CausalStore::open(ClusterConfig::small());
        assert!(matches!(s.rot(&[]), Err(Error::InvalidArgument(_))));
    }

    #[test]
    fn shutdown_stops_service() {
        let mut s = CausalStore::open(ClusterConfig::small());
        s.shutdown();
        assert!(matches!(
            s.put(Key(1), Value::new()),
            Err(Error::ClusterDown)
        ));
    }

    #[test]
    fn overwrites_read_newest() {
        let mut s = CausalStore::open(ClusterConfig::small());
        for i in 0..5u8 {
            s.put(Key(3), Value::from(vec![i])).unwrap();
        }
        assert_eq!(s.get(Key(3)).unwrap().unwrap()[0], 4);
    }
}
