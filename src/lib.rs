//! # Contrarian
//!
//! A from-scratch Rust reproduction of Didona, Guerraoui, Wang, Zwaenepoel:
//! *Causal Consistency and Latency Optimality: Friend or Foe?* (VLDB 2018).
//!
//! The workspace implements three causally consistent, partitioned,
//! multi-master geo-replicated key-value store protocols on one code base:
//!
//! * **Contrarian** ([`core_protocol`]) — the paper's contribution:
//!   nonblocking, one-version ROTs in 1½ (or 2) rounds, built on hybrid
//!   logical clocks and a stabilization protocol, with *no* extra overhead
//!   on PUTs.
//! * **CC-LO** ([`cclo`]) — the COPS-SNOW "latency-optimal" design:
//!   one-round, one-version, nonblocking ROTs paid for by a *readers check*
//!   on every PUT.
//! * **Cure** ([`cure`]) — the classic coordinator design on physical
//!   clocks: two rounds and blocking reads.
//! * **Okapi-style** ([`okapi`]) — HLC timestamps with scalar
//!   universal-stable-time snapshots: cheaper snapshot metadata, staler
//!   remote reads (Didona et al., 2017).
//!
//! ## Crate layout
//!
//! The backends share one **protocol-runtime kernel**, [`protocol`]
//! (`contrarian-protocol`): the `ProtocolServer`/`ProtocolClient` trait
//! pair, the generic `Node` actor, the GSS `Stabilizer`, the periodic
//! `Timers` registry, the `Parked` deferred-request queue, the generic
//! cluster builders, and a conformance suite that runs identical
//! convergence + session checks against every backend. A protocol crate
//! contains *only* its state machines and message/metadata types; adding a
//! fourth backend is roughly one file (implement the traits plus a
//! `ProtocolSpec`).
//!
//! Underneath sit the building blocks, layered strictly as
//! `types → runtime → {sim, transport} → protocol → backends`:
//! [`types`] (ids, keys, vectors, config, wire sizes), [`clock`] (HLC /
//! Lamport / simulated physical clocks), [`storage`] (multi-version
//! chains), [`workload`] (zipfian closed-loop generation), [`runtime`]
//! (the execution substrate both runtimes share: `Actor`/`ActorCtx`, the
//! cost model, metrics, history recording), [`sim`] (the deterministic
//! discrete-event cluster simulator with a calendar-queue scheduler sized
//! for 128-partition sweeps), [`transport`] (the live multi-threaded
//! in-process deployment of the same state machines — a sibling of the
//! simulator, not a dependent), and [`net`] (the TCP runtime: the same
//! state machines again, but nodes on threads, links as real loopback
//! sockets with Nagle disabled, and every message through the hand-rolled
//! wire codec in [`types::codec`]). [`harness`] regenerates every figure
//! and table of the paper plus a beyond-the-paper 8→128-partition scaling
//! sweep (`scale_sweep`) and a real-socket latency comparison
//! (`net_sweep`); `contrarian-bench` holds the Criterion benchmarks
//! (`BENCH_baseline.json` and `BENCH_pr2.json` for the checked-in
//! trajectory).
//!
//! Protocols are deterministic state machines driven by the simulator —
//! used to regenerate the paper's results — or by the live transports
//! (in-process channels or TCP sockets) for real concurrent execution;
//! all three speak the same `ActorCtx` interface, so protocol code never
//! knows which runtime is driving it.
//!
//! ## Building
//!
//! The workspace builds fully offline: external dependencies (`rand`,
//! `bytes`, `crossbeam`, `parking_lot`, `proptest`, `criterion`) resolve to
//! minimal in-repo shims under `crates/shims/`; swap the
//! `[workspace.dependencies]` path entries for registry versions to use the
//! real crates. `cargo build --release && cargo test -q` builds and tests
//! every crate; `cargo run -p contrarian-harness --bin all` regenerates the
//! paper's tables and figures (`CONTRARIAN_SCALE=smoke|quick|paper`).
//!
//! ## Quickstart
//!
//! The embedded facade runs a single-DC Contrarian cluster deterministically
//! in process:
//!
//! ```
//! use contrarian::api::CausalStore;
//! use contrarian::types::{ClusterConfig, Key};
//!
//! let mut store = CausalStore::open(ClusterConfig::small());
//! store.put(Key(1), "hello".into()).unwrap();
//! store.put(Key(2), "world".into()).unwrap();
//! let snap = store.rot(&[Key(1), Key(2)]).unwrap();
//! assert_eq!(snap[0].as_deref(), Some(&b"hello"[..]));
//! store.shutdown();
//! ```
//!
//! Standing up a full simulated cluster for any backend goes through the
//! kernel's generic builder:
//!
//! ```
//! use contrarian::protocol::{build_cluster, ClusterParams};
//! use contrarian::core_protocol::Contrarian;
//! use contrarian::sim::cost::CostModel;
//! use contrarian::types::ClusterConfig;
//! use contrarian::workload::WorkloadSpec;
//!
//! let params = ClusterParams {
//!     cfg: ClusterConfig::small(),
//!     cost: CostModel::functional(),
//!     workload: WorkloadSpec::paper_default().with_rot_size(2),
//!     clients_per_dc: 4,
//!     seed: 42,
//! };
//! let mut sim = build_cluster::<Contrarian>(&params);
//! sim.start();
//! sim.run_until(10_000_000); // 10 virtual milliseconds
//! ```

pub use contrarian_cclo as cclo;
pub use contrarian_clock as clock;
pub use contrarian_core as core_protocol;
pub use contrarian_cure as cure;
pub use contrarian_harness as harness;
pub use contrarian_net as net;
pub use contrarian_okapi as okapi;
pub use contrarian_protocol as protocol;
pub use contrarian_runtime as runtime;
pub use contrarian_sim as sim;
pub use contrarian_storage as storage;
pub use contrarian_transport as transport;
pub use contrarian_types as types;
pub use contrarian_workload as workload;

pub mod api;

/// Alias so `contrarian::core::...` works alongside the `core` built-in via
/// explicit path.
pub use contrarian_core;
