//! # Contrarian
//!
//! A from-scratch Rust reproduction of Didona, Guerraoui, Wang, Zwaenepoel:
//! *Causal Consistency and Latency Optimality: Friend or Foe?* (VLDB 2018).
//!
//! The workspace implements three causally consistent, partitioned,
//! multi-master geo-replicated key-value store protocols on one code base:
//!
//! * **Contrarian** ([`core`]) — the paper's contribution: nonblocking,
//!   one-version ROTs in 1½ (or 2) rounds, built on hybrid logical clocks
//!   and a stabilization protocol, with *no* extra overhead on PUTs.
//! * **CC-LO** ([`cclo`]) — the COPS-SNOW "latency-optimal" design:
//!   one-round, one-version, nonblocking ROTs paid for by a *readers check*
//!   on every PUT.
//! * **Cure** ([`cure`]) — the classic coordinator design on physical
//!   clocks: two rounds and blocking reads.
//!
//! Protocols are deterministic state machines driven either by the
//! discrete-event cluster simulator ([`sim`]) — used to regenerate every
//! figure and table of the paper — or by a live multi-threaded transport
//! ([`transport`]) for real concurrent execution.
//!
//! ## Quickstart
//!
//! ```
//! use contrarian::api::CausalStore;
//! use contrarian::types::{ClusterConfig, Key};
//!
//! let mut store = CausalStore::open(ClusterConfig::small());
//! store.put(Key(1), "hello".into()).unwrap();
//! store.put(Key(2), "world".into()).unwrap();
//! let snap = store.rot(&[Key(1), Key(2)]).unwrap();
//! assert_eq!(snap[0].as_deref(), Some(&b"hello"[..]));
//! store.shutdown();
//! ```

pub use contrarian_cclo as cclo;
pub use contrarian_clock as clock;
pub use contrarian_core as core_protocol;
pub use contrarian_cure as cure;
pub use contrarian_harness as harness;
pub use contrarian_sim as sim;
pub use contrarian_storage as storage;
pub use contrarian_transport as transport;
pub use contrarian_types as types;
pub use contrarian_workload as workload;

pub mod api;

/// Alias so `contrarian::core::...` works alongside the `core` built-in via
/// explicit path.
pub use contrarian_core;
