//! Cross-crate integration tests: every protocol, checked for causal
//! consistency, session guarantees, convergence and eventual visibility.

use contrarian::harness::check_causal;
use contrarian::harness::experiment::{run_experiment, ExperimentConfig, Protocol};
use contrarian::protocol::{build_cluster, ClusterParams};
use contrarian::sim::cost::CostModel;
use contrarian::types::{Addr, ClusterConfig, DcId, PartitionId};
use contrarian::workload::WorkloadSpec;

fn functional(protocol: Protocol, dcs: u8, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::functional(protocol);
    cfg.cluster = ClusterConfig::small().with_dcs(dcs);
    cfg.seed = seed;
    cfg
}

fn assert_causal(cfg: &ExperimentConfig) {
    let r = run_experiment(cfg);
    assert!(
        r.history.len() > 100,
        "{}: too little history",
        cfg.protocol.label()
    );
    let report = check_causal(&r.history);
    assert!(
        report.ok(),
        "{} seed {}: {} violations, first: {}",
        cfg.protocol.label(),
        cfg.seed,
        report.violations.len(),
        report.violations.first().map(String::as_str).unwrap_or("")
    );
    assert!(report.rots_checked > 0);
}

#[test]
fn contrarian_is_causally_consistent_across_seeds() {
    for seed in [1, 2, 3, 4, 5] {
        assert_causal(&functional(Protocol::Contrarian, 1, seed));
    }
}

#[test]
fn contrarian_two_round_is_causally_consistent() {
    for seed in [1, 2, 3] {
        assert_causal(&functional(Protocol::ContrarianTwoRound, 1, seed));
    }
}

#[test]
fn contrarian_replicated_is_causally_consistent() {
    for seed in [1, 2, 3] {
        assert_causal(&functional(Protocol::Contrarian, 2, seed));
    }
}

#[test]
fn contrarian_three_dcs_is_causally_consistent() {
    assert_causal(&functional(Protocol::Contrarian, 3, 9));
}

#[test]
fn cclo_is_causally_consistent_across_seeds() {
    for seed in [1, 2, 3, 4, 5] {
        assert_causal(&functional(Protocol::CcLo, 1, seed));
    }
}

#[test]
fn cclo_replicated_is_causally_consistent() {
    for seed in [1, 2, 3] {
        assert_causal(&functional(Protocol::CcLo, 2, seed));
    }
}

#[test]
fn cure_is_causally_consistent_across_seeds() {
    for seed in [1, 2, 3] {
        assert_causal(&functional(Protocol::Cure, 1, seed));
        assert_causal(&functional(Protocol::Cure, 2, seed + 10));
    }
}

#[test]
fn prepopulated_clusters_stay_causal() {
    for protocol in [Protocol::Contrarian, Protocol::CcLo, Protocol::Cure] {
        let mut cfg = functional(protocol, 2, 77);
        cfg.cluster.prepopulated = true;
        assert_causal(&cfg);
    }
}

#[test]
fn dep_precise_ablation_stays_causal() {
    let mut cfg = functional(Protocol::CcLo, 2, 31);
    cfg.cluster.cclo_dep_precise_old_readers = true;
    assert_causal(&cfg);
}

#[test]
fn all_to_all_stabilization_stays_causal() {
    let mut cfg = functional(Protocol::Contrarian, 2, 13);
    cfg.cluster.stab_topology = contrarian::types::StabilizationTopology::AllToAll;
    assert_causal(&cfg);
}

/// The streaming checker (fed event by event, as a live monitor riding a
/// `HistorySink` would be) agrees with the batch entry point on a real
/// replicated run.
#[test]
fn streaming_checker_matches_batch_on_live_history() {
    let r = run_experiment(&functional(Protocol::Contrarian, 2, 21));
    assert!(r.history.len() > 100, "too little history");
    let mut ck = contrarian::harness::CausalChecker::new();
    for ev in &r.history {
        ck.feed(ev);
    }
    let streamed = ck.report();
    let batch = check_causal(&r.history);
    assert!(streamed.ok(), "{:?}", streamed.violations.first());
    assert_eq!(streamed.rots_checked, batch.rots_checked);
    assert_eq!(streamed.versions, batch.versions);
}

/// Convergence (Section 2.2): after load stops and replication drains, all
/// replicas of every key hold the same LWW winner.
#[test]
fn contrarian_replicas_converge() {
    let params = ClusterParams {
        cfg: ClusterConfig::small().with_dcs(3),
        cost: CostModel::functional(),
        workload: WorkloadSpec::paper_default()
            .with_rot_size(2)
            .with_write_ratio(0.3),
        clients_per_dc: 3,
        seed: 99,
    };
    let mut sim = build_cluster::<contrarian::core_protocol::Contrarian>(&params);
    sim.start();
    sim.run_until(50_000_000);
    sim.set_stopped(true);
    sim.run_to_quiescence(20_000_000_000);
    for p in 0..4u16 {
        let heads: Vec<_> = (0..3u8)
            .map(|dc| {
                let node = sim.actor(Addr::server(DcId(dc), PartitionId(p)));
                let store = node.as_server().unwrap().store();
                let mut keys: Vec<_> = store
                    .iter()
                    .map(|(k, c)| (*k, c.head().unwrap().vid))
                    .collect();
                keys.sort_unstable();
                keys
            })
            .collect();
        assert_eq!(heads[0], heads[1], "partition {p}: dc0 vs dc1 diverged");
        assert_eq!(heads[0], heads[2], "partition {p}: dc0 vs dc2 diverged");
    }
}

/// Eventual visibility (Section 2.2): a value written in DC0 is eventually
/// readable by a DC1 client.
#[test]
fn contrarian_writes_become_visible_remotely() {
    use contrarian::types::{Key, Op};
    let cfg = ClusterConfig::small().with_dcs(2);
    // Interactive-ish: build a cluster whose clients idle (queue sources),
    // inject a PUT in DC0, then poll a ROT in DC1.
    let mut sim = contrarian::sim::sim::Sim::new(CostModel::functional(), 5);
    for dc in 0..2u8 {
        for p in 0..cfg.n_partitions {
            let addr = Addr::server(DcId(dc), PartitionId(p));
            sim.add_server(
                addr,
                contrarian::core_protocol::Node::Server(contrarian::core_protocol::Server::new(
                    addr,
                    cfg.clone(),
                    contrarian::clock::PhysicalClockModel::perfect(),
                )),
                2,
            );
        }
    }
    for dc in 0..2u8 {
        let addr = Addr::client(DcId(dc), 0);
        let (source, _q) = contrarian::workload::OpSource::queue();
        sim.add_client(
            addr,
            contrarian::core_protocol::Node::Client(contrarian::core_protocol::Client::new(
                addr,
                cfg.clone(),
                source,
            )),
        );
    }
    sim.set_recording(true);
    sim.start();

    let writer = Addr::client(DcId(0), 0);
    let reader = Addr::client(DcId(1), 0);
    sim.inject_op(writer, Op::Put(Key(3), "hello".into()));
    sim.run_until(5_000_000);

    // Poll from DC1 until the value is visible (stabilization + replication
    // must make it so within a few intervals). Drain the engine's history
    // incrementally instead of re-merging the whole log every round.
    let mut seen = false;
    for round in 0..200 {
        sim.inject_op(reader, Op::Rot(vec![Key(3)]));
        sim.run_until(5_000_000 + (round + 1) * 2_000_000);
        if let Some(contrarian::types::HistoryEvent::RotDone { values, .. }) =
            sim.drain_history().iter().rev().find(|ev| {
                matches!(ev, contrarian::types::HistoryEvent::RotDone { client, .. }
                    if *client == reader.client_id())
            })
        {
            if values[0].as_deref() == Some(&b"hello"[..]) {
                seen = true;
                break;
            }
        }
    }
    assert!(seen, "write never became visible in the remote DC");
}

/// The three protocols agree functionally: same seed, same workload — all
/// serve roughly the same number of operations in a fixed window and all
/// stay consistent (they differ in *performance*, which is the paper).
#[test]
fn protocols_serve_equivalent_functionality() {
    let mut counts = Vec::new();
    for protocol in [Protocol::Contrarian, Protocol::CcLo, Protocol::Cure] {
        let mut cfg = functional(protocol, 1, 123);
        // Disable clock skew so Cure does not (correctly!) spend the whole
        // window blocked — this test is about functional equivalence, not
        // the performance differences the paper measures.
        cfg.cluster.clock_skew_us = 0;
        let r = run_experiment(&cfg);
        assert!(check_causal(&r.history).ok());
        counts.push(r.history.len() as f64);
    }
    let max = counts.iter().cloned().fold(0.0, f64::max);
    let min = counts.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        min > max * 0.3,
        "op counts wildly divergent under functional cost model: {counts:?}"
    );
}
