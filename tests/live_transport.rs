//! The live threaded transport runs the same state machines as the
//! simulator; these tests exercise real concurrency and re-check causal
//! consistency on the resulting histories.

use contrarian::clock::PhysicalClockModel;
use contrarian::harness::check_causal;
use contrarian::protocol::build_live_nodes;
use contrarian::transport::LiveCluster;
use contrarian::types::{Addr, ClusterConfig, DcId, Key, Op, PartitionId};
use contrarian::workload::{OpSource, WorkloadSpec};
use std::time::Duration;

fn small_workload() -> (ClusterConfig, WorkloadSpec) {
    (
        ClusterConfig::small(),
        WorkloadSpec::paper_default().with_rot_size(2),
    )
}

#[test]
fn live_contrarian_cluster_is_causally_consistent() {
    let (cfg, wl) = small_workload();
    let nodes = build_live_nodes::<contrarian::core_protocol::Contrarian>(&cfg, &wl, 4, 11);
    let cluster = LiveCluster::start(nodes, true, 11);
    std::thread::sleep(Duration::from_millis(300));
    cluster.stop_issuing();
    std::thread::sleep(Duration::from_millis(100));
    let (_, _, history) = cluster.shutdown();
    assert!(
        history.len() > 50,
        "little progress on threads: {}",
        history.len()
    );
    let report = check_causal(&history);
    assert!(report.ok(), "{:?}", report.violations.first());
}

#[test]
fn live_cclo_cluster_is_causally_consistent() {
    let (cfg, wl) = small_workload();
    let nodes = build_live_nodes::<contrarian::cclo::CcLo>(&cfg, &wl, 4, 13);
    let cluster = LiveCluster::start(nodes, true, 13);
    std::thread::sleep(Duration::from_millis(300));
    cluster.stop_issuing();
    std::thread::sleep(Duration::from_millis(100));
    let (_, _, history) = cluster.shutdown();
    assert!(history.len() > 50);
    let report = check_causal(&history);
    assert!(report.ok(), "{:?}", report.violations.first());
}

#[test]
fn live_interactive_injection_round_trips() {
    let (cfg, _wl) = small_workload();
    let mut nodes = Vec::new();
    for p in 0..cfg.n_partitions {
        let addr = Addr::server(DcId(0), PartitionId(p));
        nodes.push((
            addr,
            contrarian::core_protocol::Node::Server(contrarian::core_protocol::Server::new(
                addr,
                cfg.clone(),
                PhysicalClockModel::perfect(),
            )),
        ));
    }
    let client = Addr::client(DcId(0), 0);
    let (source, _q) = OpSource::queue();
    nodes.push((
        client,
        contrarian::core_protocol::Node::Client(contrarian::core_protocol::Client::new(
            client,
            cfg.clone(),
            source,
        )),
    ));

    let cluster = LiveCluster::start(nodes, true, 17);
    let handle = cluster.handle();
    let mut cursor = 0;

    cluster.inject_op(client, Op::Put(Key(2), "live".into()));
    let put = handle.wait_for_history(&mut cursor, Duration::from_secs(5), |ev| {
        matches!(ev, contrarian::types::HistoryEvent::PutDone { .. })
    });
    assert!(put.is_some(), "PUT did not complete on the live cluster");

    cluster.inject_op(client, Op::Rot(vec![Key(2)]));
    let rot = handle.wait_for_history(&mut cursor, Duration::from_secs(5), |ev| {
        matches!(ev, contrarian::types::HistoryEvent::RotDone { .. })
    });
    match rot {
        Some(contrarian::types::HistoryEvent::RotDone { values, .. }) => {
            assert_eq!(values[0].as_deref(), Some(&b"live"[..]));
        }
        other => panic!("ROT did not complete: {other:?}"),
    }
    cluster.shutdown();
}
