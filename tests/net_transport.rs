//! The TCP runtime runs the same state machines as the simulator and the
//! in-process transport; these tests push real bytes through loopback
//! sockets and re-check causal consistency on the resulting histories
//! with the same checker used for simulated runs.

use contrarian::harness::check_causal;
use contrarian::protocol::build_net_cluster;
use contrarian::types::{ClusterConfig, HistoryEvent, Key, Op};
use contrarian::workload::WorkloadSpec;
use std::time::Duration;

fn net_config() -> (ClusterConfig, WorkloadSpec) {
    (
        ClusterConfig::small().for_wall_clock(),
        WorkloadSpec::paper_default().with_rot_size(2),
    )
}

#[test]
fn tcp_contrarian_cluster_is_causally_consistent() {
    let (cfg, wl) = net_config();
    let cluster =
        build_net_cluster::<contrarian::core_protocol::Contrarian>(&cfg, &wl, 4, 111, true);
    std::thread::sleep(Duration::from_millis(300));
    cluster.stop_issuing();
    std::thread::sleep(Duration::from_millis(100));
    let (_, metrics, history) = cluster.shutdown();
    assert!(
        history.len() > 50,
        "little progress over sockets: {}",
        history.len()
    );
    assert!(metrics.counter("net.frames_sent") > 0);
    let report = check_causal(&history);
    assert!(report.ok(), "{:?}", report.violations.first());
}

#[test]
fn tcp_okapi_cluster_is_causally_consistent() {
    let (cfg, wl) = net_config();
    let cluster = build_net_cluster::<contrarian::okapi::Okapi>(&cfg, &wl, 4, 113, true);
    std::thread::sleep(Duration::from_millis(300));
    cluster.stop_issuing();
    std::thread::sleep(Duration::from_millis(100));
    let (_, _, history) = cluster.shutdown();
    assert!(history.len() > 50);
    let report = check_causal(&history);
    assert!(report.ok(), "{:?}", report.violations.first());
}

#[test]
fn tcp_interactive_injection_round_trips() {
    use contrarian::clock::PhysicalClockModel;
    use contrarian::net::NetCluster;
    use contrarian::types::{Addr, DcId, PartitionId};
    use contrarian::workload::OpSource;

    let (cfg, _) = net_config();
    let mut nodes = Vec::new();
    for p in 0..cfg.n_partitions {
        let addr = Addr::server(DcId(0), PartitionId(p));
        nodes.push((
            addr,
            contrarian::core_protocol::Node::Server(contrarian::core_protocol::Server::new(
                addr,
                cfg.clone(),
                PhysicalClockModel::perfect(),
            )),
        ));
    }
    let client = Addr::client(DcId(0), 0);
    let (source, _q) = OpSource::queue();
    nodes.push((
        client,
        contrarian::core_protocol::Node::Client(contrarian::core_protocol::Client::new(
            client,
            cfg.clone(),
            source,
        )),
    ));

    let cluster = NetCluster::start(nodes, true, 17);
    let handle = cluster.handle();
    let mut cursor = 0;

    cluster.inject_op(client, Op::Put(Key(2), "sockets".into()));
    let put = handle.wait_for_history(&mut cursor, Duration::from_secs(5), |ev| {
        matches!(ev, HistoryEvent::PutDone { .. })
    });
    assert!(put.is_some(), "PUT did not complete over TCP");

    cluster.inject_op(client, Op::Rot(vec![Key(2)]));
    let rot = handle.wait_for_history(&mut cursor, Duration::from_secs(5), |ev| {
        matches!(ev, HistoryEvent::RotDone { .. })
    });
    match rot {
        Some(HistoryEvent::RotDone { values, .. }) => {
            assert_eq!(values[0].as_deref(), Some(&b"sockets"[..]));
        }
        other => panic!("ROT did not complete over TCP: {other:?}"),
    }
    cluster.shutdown();
}
