//! Property-based tests on the core invariants: whatever the seed, workload
//! mix, or cluster shape, the protocols must produce causally consistent
//! histories, HLCs must stay monotone under arbitrary interleavings, the
//! lattice must behave, and the checker itself must catch injected bugs.

use contrarian::clock::Hlc;
use contrarian::harness::check_causal;
use contrarian::harness::experiment::{run_experiment, ExperimentConfig, Protocol};
use contrarian::sim::cost::CostModel;
use contrarian::types::{ClusterConfig, DepVector, HistoryEvent, Key, VersionId};
use proptest::prelude::*;

fn functional_cfg(
    protocol: Protocol,
    seed: u64,
    dcs: u8,
    clients: u16,
    w: f64,
) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::functional(protocol);
    cfg.cluster = ClusterConfig::small().with_dcs(dcs);
    cfg.clients_per_dc = clients;
    cfg.workload = cfg.workload.with_write_ratio(w);
    cfg.seed = seed;
    cfg.measure_ns = 15_000_000;
    cfg.cost = CostModel::functional();
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seed/shape: Contrarian histories check out.
    #[test]
    fn contrarian_always_causal(
        seed in 0u64..5000,
        dcs in 1u8..=2,
        clients in 2u16..6,
        w in 0.05f64..0.5,
    ) {
        let r = run_experiment(&functional_cfg(Protocol::Contrarian, seed, dcs, clients, w));
        let report = check_causal(&r.history);
        prop_assert!(report.ok(), "{:?}", report.violations.first());
    }

    /// Any seed/shape: CC-LO histories check out (the readers check works).
    #[test]
    fn cclo_always_causal(
        seed in 0u64..5000,
        dcs in 1u8..=2,
        clients in 2u16..6,
        w in 0.05f64..0.5,
    ) {
        let r = run_experiment(&functional_cfg(Protocol::CcLo, seed, dcs, clients, w));
        let report = check_causal(&r.history);
        prop_assert!(report.ok(), "{:?}", report.violations.first());
    }

    /// HLC timestamps strictly increase under any local interleaving of
    /// ticks and updates, and never run far ahead of physical time.
    #[test]
    fn hlc_monotone_under_interleavings(
        events in prop::collection::vec((0u64..1000, prop::option::of(0u64..(1000u64 << 16))), 1..200)
    ) {
        let mut h = Hlc::new();
        let mut last = 0u64;
        for (pt, msg) in events {
            let t = match msg {
                Some(m) => h.update(pt, m),
                None => h.tick(pt),
            };
            prop_assert!(t > last, "timestamp regressed: {t} after {last}");
            last = t;
        }
    }

    /// DepVector lattice laws: join is commutative/associative/idempotent
    /// and dominates both operands.
    #[test]
    fn depvector_lattice_laws(
        a in prop::collection::vec(0u64..100, 3),
        b in prop::collection::vec(0u64..100, 3),
        c in prop::collection::vec(0u64..100, 3),
    ) {
        let (va, vb, vc) = (
            DepVector::from_vec(a),
            DepVector::from_vec(b),
            DepVector::from_vec(c),
        );
        // Commutative.
        prop_assert_eq!(va.joined(&vb), vb.joined(&va));
        // Associative.
        prop_assert_eq!(va.joined(&vb).joined(&vc), va.joined(&vb.joined(&vc)));
        // Idempotent.
        prop_assert_eq!(va.joined(&va), va.clone());
        // Dominates operands.
        prop_assert!(va.leq(&va.joined(&vb)));
        prop_assert!(vb.leq(&va.joined(&vb)));
    }

    /// The checker catches corrupted histories: take a valid Contrarian
    /// run and downgrade a client's read of a key it had itself written —
    /// a guaranteed read-your-writes violation.
    #[test]
    fn checker_catches_injected_staleness(seed in 0u64..300) {
        let r = run_experiment(&functional_cfg(Protocol::Contrarian, seed, 1, 4, 0.4));
        prop_assume!(check_causal(&r.history).ok());
        let mut history = r.history.clone();
        // Find a PUT followed (in the same client's session) by a ROT that
        // read the written key; downgrade that read to the genesis version.
        let mut injected = false;
        'outer: for j in 0..history.len() {
            let HistoryEvent::PutDone { client, key, vid, .. } = history[j].clone() else {
                continue;
            };
            if vid.is_genesis() {
                continue;
            }
            for ev in history.iter_mut().skip(j + 1) {
                let HistoryEvent::RotDone { client: rc, pairs, .. } = ev else {
                    continue;
                };
                if *rc != client {
                    continue;
                }
                if let Some(slot) = pairs.iter_mut().find(|(k, v)| *k == key && v.is_some()) {
                    slot.1 = Some(VersionId::GENESIS);
                    injected = true;
                    break 'outer;
                }
            }
        }
        prop_assume!(injected);
        let report = check_causal(&history);
        prop_assert!(!report.ok(), "checker missed an injected stale read");
    }

    /// Version ids order correctly regardless of origin (LWW total order).
    #[test]
    fn version_order_total(ts1 in 0u64..1000, ts2 in 0u64..1000, o1 in 0u8..4, o2 in 0u8..4) {
        let a = VersionId::new(ts1, contrarian::types::DcId(o1));
        let b = VersionId::new(ts2, contrarian::types::DcId(o2));
        // Total: exactly one of <, ==, > holds.
        let rels = [a < b, a == b, a > b];
        prop_assert_eq!(rels.iter().filter(|x| **x).count(), 1);
    }
}

// Zipf statistical sanity under proptest-chosen skews: top rank is always
// at least as likely as a mid rank.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn zipf_rank_order(theta in 0.1f64..0.99, seed in 0u64..1000) {
        use rand::SeedableRng;
        let z = contrarian::workload::Zipf::new(1000, theta);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut hits0 = 0u32;
        let mut hits500 = 0u32;
        for _ in 0..20_000 {
            match z.sample(&mut rng) {
                0 => hits0 += 1,
                500 => hits500 += 1,
                _ => {}
            }
        }
        prop_assert!(hits0 >= hits500);
    }
}

// Storage invariant: whatever the interleaving of inserts (including
// duplicate ids from replication redelivery) and GC passes, a version chain
// stays strictly ascending by version id, its head is the newest live
// version, and GC with min_keep >= 1 never drops the head.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn chain_insert_gc_keeps_ascending_vids(
        ops in prop::collection::vec((0u8..8, 0u64..200, 0u8..3), 1..120)
    ) {
        use contrarian::storage::{Chain, Version};
        use contrarian::types::{DcId, Value};

        let mut chain: Chain<u8> = Chain::new();
        for (kind, a, b) in ops {
            if kind < 6 {
                // Insert ts=a, origin=b (replication can interleave and
                // redeliver, so out-of-order and duplicate ids are normal).
                chain.insert(Version::new(VersionId::new(a, DcId(b)), Value::new(), b));
            } else {
                // GC at horizon a, always retaining the newest 1..=2.
                let min_keep = 1 + (b as usize % 2);
                let head_before = chain.head().map(|v| v.vid);
                chain.gc(a, min_keep);
                if let Some(h) = head_before {
                    prop_assert_eq!(
                        chain.head().map(|v| v.vid),
                        Some(h),
                        "GC with min_keep >= 1 must keep the head"
                    );
                }
            }
            // The ascending-vid invariant, re-checked after every step.
            let vids: Vec<_> = chain.iter_desc().map(|v| v.vid).collect();
            for w in vids.windows(2) {
                prop_assert!(w[0] > w[1], "chain not strictly ascending: {:?}", vids);
            }
            // Head is the newest live version.
            if let Some(h) = chain.head() {
                prop_assert!(vids.iter().all(|v| *v <= h.vid));
            }
        }
    }

    #[test]
    fn chain_reinsert_replaces_not_duplicates(
        ts in 0u64..50,
        metas in prop::collection::vec(0u8..250, 2..6)
    ) {
        use contrarian::storage::{Chain, Version};
        use contrarian::types::{DcId, Value};

        let mut chain: Chain<u8> = Chain::new();
        for &m in &metas {
            chain.insert(Version::new(VersionId::new(ts, DcId(0)), Value::new(), m));
        }
        prop_assert_eq!(chain.len(), 1, "idempotent redelivery must replace");
        prop_assert_eq!(chain.head().unwrap().meta, *metas.last().unwrap());
    }
}

/// Deterministic regression: a known-good seed must produce a bit-identical
/// operation count (guards the simulator's determinism across refactors).
#[test]
fn simulation_is_reproducible() {
    let cfg = functional_cfg(Protocol::Contrarian, 42, 1, 4, 0.2);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a.history.len(), b.history.len());
    assert_eq!(a.throughput_kops, b.throughput_kops);
}

/// The injected-bug test's sibling: reordering a client's session events
/// (swapping a PUT before the ROT that depended on it) must be caught as a
/// session violation when it creates a backwards read.
#[test]
fn checker_catches_backwards_session() {
    use contrarian::types::{ClientId, DcId, TxId};
    let c = ClientId::new(DcId(0), 0);
    let history = vec![
        HistoryEvent::PutDone {
            client: c,
            seq: 0,
            t_start: 0,
            t_end: 1,
            key: Key(1),
            vid: VersionId::new(10, DcId(0)),
        },
        HistoryEvent::RotDone {
            client: c,
            tx: TxId::new(c, 0),
            t_start: 2,
            t_end: 3,
            pairs: vec![(Key(1), Some(VersionId::new(5, DcId(0))))],
            values: vec![None],
        },
    ];
    assert!(!check_causal(&history).ok());
}
